package egraph

import (
	"context"
	"fmt"
	"sort"
)

// Rule is a rewrite rule (a "lemma" in the paper's terms, §4.2.1).
// LHS matches produce substitutions; Apply returns the classes that
// should be unioned with the matched class. A nil result (or empty
// slice) means the rule's condition did not hold for this match.
type Rule struct {
	Name string

	LHS *Pattern

	// RHS is the declarative right-hand-side template, when the rule
	// has one (rules built with Simple and Constrained always do).
	// Apply remains the executable form; RHS exists so static tooling
	// (internal/lint) can reason about what the rule builds — unbound
	// template variables, trivial self-loops, redundant specializations
	// — without running it. Rules whose right-hand side is computed
	// from e-graph state leave RHS nil.
	RHS *RTerm

	// Stateful marks rules whose Apply inspects e-graph state beyond
	// the match bindings (scanning class members or parents). Pure
	// rules are applied at most once per distinct match fingerprint;
	// stateful rules re-run every iteration because the graph may have
	// grown what they scan.
	Stateful bool

	// Apply builds the right-hand side(s) and returns the class pairs
	// to union. Most rules union the matched class with one RHS class
	// (use m.With); generative lemmas may union other pairs.
	// Conditioned rules inspect g.Ctx and the substitution and decline
	// by returning nil.
	Apply func(g *EGraph, m Match) []UnionPair
}

// UnionPair is one equivalence a rule asserts.
type UnionPair struct{ A, B ClassID }

// With pairs the matched class with c — the common rule result.
func (m Match) With(c ClassID) []UnionPair {
	return []UnionPair{{m.Class, c}}
}

// Simple builds the common universal-lemma shape: LHS pattern →
// RHS template, unconditionally. The template is kept on Rule.RHS as
// declarative metadata alongside the Apply closure that executes it.
func Simple(name string, lhs *Pattern, rhs *RTerm) *Rule {
	return templated(name, lhs, rhs, false)
}

// Constrained builds a rule whose RHS is only added when its nodes
// already exist in the e-graph (the paper's constrained lemmas,
// §4.3.2, used for generative rules like slice splitting).
func Constrained(name string, lhs *Pattern, rhs *RTerm) *Rule {
	return templated(name, lhs, rhs, true)
}

func templated(name string, lhs *Pattern, rhs *RTerm, lookupOnly bool) *Rule {
	return &Rule{
		Name: name,
		LHS:  lhs,
		RHS:  rhs,
		Apply: func(g *EGraph, m Match) []UnionPair {
			c, ok := g.Instantiate(rhs, m.Subst, lookupOnly)
			if !ok {
				return nil
			}
			return m.With(c)
		},
	}
}

// SaturateOpts bound a saturation run. Zero values select defaults.
type SaturateOpts struct {
	MaxIters int // default 16
	// MaxNodes caps the number of *live* ENodes — the value reported
	// by EGraph.NodeCount(), i.e. distinct nodes currently stored
	// across all classes, after dedup. The cap is enforced inside rule
	// instantiation: an application that would create a node beyond it
	// is declined (its unions don't happen), and Saturate stops
	// applying further matches, rebuilds (so the e-graph is left
	// congruent), and returns with Saturated == false. Rules that
	// build nodes directly through AddNode bypass the per-node check,
	// so the live count can overshoot by at most one application's
	// worth of nodes. Default 40_000.
	MaxNodes int
	// Ctx, when non-nil, cancels the run: it is polled between
	// iterations and every few match applications, so a cancelled
	// Saturate returns promptly even mid-iteration — always after
	// Rebuild, leaving the e-graph congruent exactly as on a budget
	// stop. A nil Ctx never cancels.
	Ctx context.Context
	// Unindexed selects the naive reference matcher, which re-visits
	// every class × rule pair each iteration, instead of the indexed
	// dirty-tracked matcher (index.go). Both produce identical
	// applications, stats, and extraction results — the differential
	// tests compare the two paths — so this exists for those tests and
	// for bisecting matcher regressions, not for production use.
	Unindexed bool
	// Compiled, when non-nil, supplies a precompiled analysis of
	// exactly the rules slice passed to Saturate (CompileRules), saving
	// the per-call compilation. A CompiledRules value is read-only
	// during matching, so one value may be shared across goroutines and
	// e-graphs. Nil means Saturate compiles on entry.
	Compiled *CompiledRules
}

func (o SaturateOpts) withDefaults() SaturateOpts {
	if o.MaxIters == 0 {
		o.MaxIters = 16
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 40_000
	}
	return o
}

// StopReason records why a saturation run stopped. Values are ordered
// by severity so Merge can keep the most severe reason seen across
// runs; the zero value (StopNone, "no run yet") is the Merge identity.
type StopReason int

const (
	// StopNone is the zero value: no saturation run recorded.
	StopNone StopReason = iota
	// StopSaturated: the run reached fixpoint.
	StopSaturated
	// StopIterLimit: MaxIters elapsed before fixpoint.
	StopIterLimit
	// StopNodeLimit: an application pushed the live node count past
	// MaxNodes.
	StopNodeLimit
	// StopCancelled: SaturateOpts.Ctx was cancelled.
	StopCancelled
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopSaturated:
		return "saturated"
	case StopIterLimit:
		return "iter-limit"
	case StopNodeLimit:
		return "node-limit"
	case StopCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Stats reports what a saturation run did. Applications counts, per
// rule name, the number of matches whose union changed the e-graph —
// the quantity plotted in the paper's Figure 6 heatmap.
type Stats struct {
	Iterations   int
	Applications map[string]int
	Saturated    bool // every merged run reached fixpoint (vs. limit hit)
	Nodes        int
	// Matches counts e-matches collected across all iterations (before
	// the applied-fingerprint filter): the match-loop work the
	// `-exp saturate` bench tracks per iteration. With dirty-class
	// tracking this is far below classes × rules × iterations.
	Matches int
	// Runs counts the saturation runs accumulated into this value.
	// The zero value (Runs == 0) is the identity of Merge: merging a
	// run into it adopts that run's Saturated flag instead of AND-ing
	// with the zero value's false.
	Runs int
	// Cancelled counts merged runs stopped by context cancellation.
	Cancelled int
	// BudgetHit counts merged runs stopped by MaxIters or MaxNodes —
	// the "inconclusive, not disproved" signal the checker's verdict
	// layer and budget escalation key off.
	BudgetHit int
	// StopReason is the most severe stop cause across merged runs
	// (cancelled > node-limit > iter-limit > saturated). The zero
	// value StopNone is the Merge identity.
	StopReason StopReason
}

// RuleNames lists rules with non-zero applications, sorted.
func (s Stats) RuleNames() []string {
	var names []string
	for n, c := range s.Applications {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Merge accumulates another run's stats into s. The zero Stats value
// is an identity: Saturated is adopted from the first real run merged
// in and AND-ed thereafter, so accumulators need no pre-seeding.
func (s *Stats) Merge(o Stats) {
	s.Iterations += o.Iterations
	if s.Applications == nil {
		s.Applications = map[string]int{}
	}
	for k, v := range o.Applications {
		s.Applications[k] += v
	}
	switch {
	case o.Runs == 0:
		// Merging an empty accumulator: nothing ran, keep s.Saturated.
	case s.Runs == 0:
		s.Saturated = o.Saturated
	default:
		s.Saturated = s.Saturated && o.Saturated
	}
	s.Runs += o.Runs
	s.Matches += o.Matches
	if o.Nodes > s.Nodes {
		s.Nodes = o.Nodes
	}
	s.Cancelled += o.Cancelled
	s.BudgetHit += o.BudgetHit
	if o.StopReason > s.StopReason {
		s.StopReason = o.StopReason
	}
}

// cancelPollEvery is how many match applications pass between context
// polls inside one saturation iteration — frequent enough that a
// cancelled deadline stops a large iteration in well under its full
// apply cost, rare enough that Ctx.Err is off the hot path.
const cancelPollEvery = 32

// appendFingerprint serializes a pure-rule match identity into buf:
// rule name plus every bound class (canonicalized), attribute, and
// kid-list, length-prefixed so distinct matches never collide. Both
// matchers fingerprint identically, which is what makes the indexed
// matcher's skipped re-matches unobservable.
func (g *EGraph) appendFingerprint(buf []byte, p ruleMatch) []byte {
	put := func(v ClassID) {
		u := uint32(v)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	buf = append(buf, p.rule.Name...)
	buf = append(buf, 0) // rule names are NUL-free, so the prefix is unambiguous
	put(g.Find(p.m.Class))
	//lint:ignore source-map-range-append Subst.classes is a slice; the name collides with the EGraph.classes map in the linter's field-name index
	for i := range p.m.Subst.classes {
		buf = append(buf, 'c')
		put(g.Find(p.m.Subst.classes[i].c))
	}
	for i := range p.m.Subst.attrs {
		buf = append(buf, 'a')
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = p.m.Subst.attrs[i].e.AppendKey(buf)
		n := uint32(len(buf) - lenAt - 4)
		buf[lenAt], buf[lenAt+1], buf[lenAt+2], buf[lenAt+3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	}
	for i := range p.m.Subst.kids {
		ks := p.m.Subst.kids[i].ks
		buf = append(buf, 'k')
		put(ClassID(len(ks)))
		for _, k := range ks {
			put(g.Find(k))
		}
	}
	return buf
}

// sameRules reports whether two rule slices hold identical rules in
// identical order — the condition for carrying saturation state from
// one Saturate call to the next on the same graph.
func sameRules(a, b []*Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Saturate runs the rules to fixpoint or until limits are hit. Matches
// are collected on a frozen view each iteration, then applied — the
// standard egg iteration structure.
//
// Saturation state persists on the graph across calls: the
// applied-fingerprint set survives (an application executes at most
// once per graph lifetime, not once per call), and when the previous
// call reached fixpoint under the same rules, the next call skips the
// full first-iteration scan and e-matches only classes dirtied since —
// which makes the checker's fold-a-node-then-resaturate frontier loop
// incremental instead of quadratic. A call that stopped on a budget or
// cancellation clears the fixpoint carry, so the next call rescans
// everything (the applied set stays valid either way: it records only
// applications that fully executed).
func (g *EGraph) Saturate(rules []*Rule, opts SaturateOpts) Stats {
	opts = opts.withDefaults()
	stats := Stats{Applications: map[string]int{}, Runs: 1}
	if g.appliedFP == nil {
		g.appliedFP = map[string]bool{}
	}
	applied := g.appliedFP
	carry := g.satFixpoint && sameRules(g.satRules, rules)
	g.satFixpoint = false
	g.satRules = rules
	fpBuf := g.fpBuf
	cr := opts.Compiled
	if cr == nil && !opts.Unindexed {
		cr = CompileRules(rules)
	}
	// Arm the instantiation budget for the duration of the run.
	g.nodeLimit = opts.MaxNodes
	g.budgetDenied = false
	defer func() { g.nodeLimit = 0; g.budgetDenied = false }()
	limitHit := false
	cancelled := false
	var todo []ruleMatch
	for iter := 0; iter < opts.MaxIters && !limitHit && !cancelled; iter++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			cancelled = true
			break
		}
		stats.Iterations = iter + 1
		// Substitutions live from here until the apply loop below
		// finishes with them; the next phase's reset recycles the slots.
		g.substArena.reset()
		g.arenaOn = true
		if opts.Unindexed {
			g.dirty = g.dirty[:0] // keep the accumulator bounded
			todo = g.matchRules(rules)
		} else {
			todo = g.matchRulesIndexed(cr, iter == 0 && !carry, todo[:0])
		}
		g.arenaOn = false
		stats.Matches += len(todo)
		changed := false
		for mi, p := range todo {
			// Poll for cancellation mid-iteration, then fall through to
			// Rebuild below: stopping without it would leave the memo
			// and parent lists stale and later extractions
			// non-congruent. The same fall-through applies to the
			// budget stop.
			if mi%cancelPollEvery == cancelPollEvery-1 && opts.Ctx != nil && opts.Ctx.Err() != nil {
				cancelled = true
				break
			}
			pure := !p.rule.Stateful
			if pure {
				// Pure rules: one application per canonical match. The
				// map probe uses the byte buffer directly (no string
				// allocation unless the key is inserted).
				fpBuf = g.appendFingerprint(fpBuf[:0], p)
				if applied[string(fpBuf)] {
					continue
				}
			}
			if g.nodeCount > opts.MaxNodes {
				// A direct-AddNode rule overshot the live count; stop
				// applying matches.
				limitHit = true
				break
			}
			pairs := p.rule.Apply(g, p.m)
			for _, up := range pairs {
				if g.Union(up.A, up.B) {
					changed = true
					stats.Applications[p.rule.Name]++
				}
			}
			if g.budgetDenied {
				// The instantiation cap declined part of this
				// application: it is incomplete, so it stays out of the
				// applied set — a later run with a bigger budget must
				// re-derive it.
				limitHit = true
				break
			}
			if pure {
				applied[string(fpBuf)] = true
			}
		}
		g.Rebuild()
		if !changed && !limitHit && !cancelled {
			stats.Saturated = true
			break
		}
	}
	g.fpBuf = fpBuf[:0]
	g.satFixpoint = stats.Saturated
	switch {
	case cancelled:
		stats.StopReason = StopCancelled
		stats.Cancelled = 1
	case limitHit:
		stats.StopReason = StopNodeLimit
		stats.BudgetHit = 1
	case stats.Saturated:
		stats.StopReason = StopSaturated
	default:
		// The iteration budget elapsed while rules were still firing.
		stats.StopReason = StopIterLimit
		stats.BudgetHit = 1
	}
	stats.Nodes = g.nodeCount
	return stats
}
