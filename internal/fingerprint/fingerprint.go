// Package fingerprint computes canonical, content-addressed SHA-256
// identities for ENTANGLE's unit of checking: one G_s operator plus
// everything its verdict is a function of — the operator's upstream
// cone (structure, shapes, attributes), the input-relation entries its
// cone consumes, and the ambient configuration (distributed graph,
// lemma registry, saturation budget, checker version). The verdict
// cache (internal/vcache) keys on these hashes, so two properties are
// load-bearing:
//
//   - Stability. The hash must be identical for structurally equal
//     inputs however they were produced: JSON field order, node and
//     tensor renames, tensor/node ID renumbering (a WriteGraph →
//     ReadGraph round trip renumbers both), and Go map iteration order
//     must all be invisible. Every encoder below therefore works from
//     structure (producer links, positions in the declared input list)
//     and sorts anything whose source order is not semantic. Names and
//     labels are display metadata and are never hashed.
//
//   - Sensitivity. Anything that could change a verdict must change
//     the hash: an added/removed lemma (via the registry fingerprint),
//     a budget or option change (via the options encoding), a shape,
//     attribute, or wiring change anywhere in the upstream cone, any
//     change to G_d, and any change to the relevant input-relation
//     entries.
//
// The canonical byte encodings are exported (CanonicalTerm,
// CanonicalExpr, CanonicalShape, the cone/graph encoders write through
// them) so any graph producer can reproduce a hash without this
// package's Go values.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Hash is a 32-byte SHA-256 content address.
type Hash [sha256.Size]byte

// Hex renders the hash as lowercase hex.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// sum hashes a canonical byte string.
func sum(data []byte) Hash { return sha256.Sum256(data) }

// CanonicalExpr returns the canonical encoding of a symbolic scalar:
// sym.Expr.Key, which is normalized (constant first, symbols sorted)
// and parseable by sym.Parse.
func CanonicalExpr(e sym.Expr) string { return e.Key() }

// CanonicalShape returns the canonical encoding of a shape:
// "[k1,k2,…]" over CanonicalExpr dims.
func CanonicalShape(s shape.Shape) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, d := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CanonicalExpr(d))
	}
	b.WriteByte(']')
	return b.String()
}

// GdIndex assigns every tensor of one graph a canonical ordinal: the
// declared inputs in order, then each node's outputs in topological
// order. Raw tensor IDs are NOT canonical — a WriteGraph→ReadGraph
// round trip renumbers them in topological order — but this
// enumeration is invariant under that renumbering (the JSON encoder
// itself serializes nodes topologically), under renames, and under
// map iteration, so terms that reference G_d tensors encode ordinals
// instead of IDs.
type GdIndex struct {
	g       *graph.Graph
	ord     map[graph.TensorID]int
	tensors []graph.TensorID // ordinal → tensor ID
}

// NewGdIndex builds the canonical tensor enumeration for g.
func NewGdIndex(g *graph.Graph) (*GdIndex, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	ix := &GdIndex{g: g, ord: make(map[graph.TensorID]int, len(g.Tensors))}
	add := func(id graph.TensorID) {
		ix.ord[id] = len(ix.tensors)
		ix.tensors = append(ix.tensors, id)
	}
	for _, in := range g.Inputs {
		add(in)
	}
	for _, n := range order {
		for _, out := range n.Outputs {
			add(out)
		}
	}
	return ix, nil
}

// Graph returns the indexed graph.
func (ix *GdIndex) Graph() *graph.Graph { return ix.g }

// CanonicalTerm returns the canonical encoding of a clean expression
// term. G_d leaves (TID ≥ relation.GdOffset) encode "d<ordinal>" via
// ix's canonical enumeration (raw "d<id>" when ix is nil — only for
// contexts with no graph at hand, e.g. debugging); G_s leaves encode
// "s<id>"; interior nodes encode "(op|str|ints|arg;arg;…)". Names are
// omitted: they are display metadata, rebound from the current graphs
// on decode. The encoding is injective on structurally distinct terms
// and DecodeTerm inverts it.
func CanonicalTerm(t *expr.Term, ix *GdIndex) string {
	var b strings.Builder
	writeTerm(&b, t, ix)
	return b.String()
}

func writeTerm(b *strings.Builder, t *expr.Term, ix *GdIndex) {
	if t.IsLeaf() {
		if relation.IsGd(t.TID) {
			id := relation.GdTensorID(t.TID)
			if ix != nil {
				fmt.Fprintf(b, "d%d", ix.ord[id])
			} else {
				fmt.Fprintf(b, "d%d", int(id))
			}
		} else {
			fmt.Fprintf(b, "s%d", t.TID)
		}
		return
	}
	b.WriteByte('(')
	b.WriteString(string(t.Op))
	b.WriteByte('|')
	b.WriteString(t.Str)
	b.WriteByte('|')
	for i, e := range t.Ints {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CanonicalExpr(e))
	}
	b.WriteByte('|')
	for i, a := range t.Args {
		if i > 0 {
			b.WriteByte(';')
		}
		writeTerm(b, a, ix)
	}
	b.WriteByte(')')
}

// LeafNameFn resolves a decoded leaf back to a display name. space is
// 's' (G_s) or 'd' (G_d); id is the tensor ID within that graph.
type LeafNameFn func(space byte, id graph.TensorID) string

// DecodeTerm inverts CanonicalTerm. G_d leaf ordinals are resolved to
// the current graph's tensors through ix (raw IDs when nil); G_s leaf
// display names through name (nil leaves them empty). Any syntactic
// defect — an unknown operator, an out-of-range ordinal, and any arity
// violation the rebuilt term would carry — is an error, never a panic:
// the verdict cache treats a decode error as a miss.
func DecodeTerm(s string, ix *GdIndex, name LeafNameFn) (t *expr.Term, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			t, err = nil, fmt.Errorf("fingerprint: decoding term %q: %v", s, rec)
		}
	}()
	p := &termParser{src: s, ix: ix, name: name}
	t, err = p.parse()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("fingerprint: trailing input at %d in term %q", p.pos, s)
	}
	return t, nil
}

type termParser struct {
	src  string
	pos  int
	ix   *GdIndex
	name LeafNameFn
}

func (p *termParser) parse() (*expr.Term, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("fingerprint: empty term at %d in %q", p.pos, p.src)
	}
	if p.src[p.pos] != '(' {
		return p.parseLeaf()
	}
	p.pos++ // '('
	op, err := p.until("|")
	if err != nil {
		return nil, err
	}
	str, err := p.until("|")
	if err != nil {
		return nil, err
	}
	intsRaw, err := p.until("|")
	if err != nil {
		return nil, err
	}
	var ints []sym.Expr
	if intsRaw != "" {
		for _, part := range strings.Split(intsRaw, ",") {
			e, perr := sym.Parse(part)
			if perr != nil {
				return nil, fmt.Errorf("fingerprint: term attr %q: %v", part, perr)
			}
			ints = append(ints, e)
		}
	}
	var args []*expr.Term
	for {
		a, err := p.parse()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("fingerprint: unterminated term in %q", p.src)
		}
		if p.src[p.pos] == ';' {
			p.pos++
			continue
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		return nil, fmt.Errorf("fingerprint: unexpected %q at %d in %q", p.src[p.pos], p.pos, p.src)
	}
	if _, known := expr.Arity(expr.Op(op)); !known {
		return nil, fmt.Errorf("fingerprint: unknown operator %q in %q", op, p.src)
	}
	// expr.New panics on arity violations; the deferred recover in
	// DecodeTerm converts that into an error.
	return expr.New(expr.Op(op), ints, str, args...), nil
}

func (p *termParser) parseLeaf() (*expr.Term, error) {
	space := p.src[p.pos]
	if space != 's' && space != 'd' {
		return nil, fmt.Errorf("fingerprint: bad leaf space %q at %d in %q", space, p.pos, p.src)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("fingerprint: leaf without id at %d in %q", start, p.src)
	}
	var id int
	if _, err := fmt.Sscanf(p.src[start:p.pos], "%d", &id); err != nil {
		return nil, err
	}
	if space == 'd' {
		if p.ix != nil {
			if id < 0 || id >= len(p.ix.tensors) {
				return nil, fmt.Errorf("fingerprint: G_d ordinal %d out of range in %q", id, p.src)
			}
			return relation.GdLeaf(p.ix.g.Tensor(p.ix.tensors[id])), nil
		}
		var display string
		if p.name != nil {
			display = p.name('d', graph.TensorID(id))
		}
		return expr.Tensor(id+relation.GdOffset, display), nil
	}
	var display string
	if p.name != nil {
		display = p.name('s', graph.TensorID(id))
	}
	return expr.Tensor(id, display), nil
}

// until consumes up to (and including) the next occurrence of any
// delimiter byte, returning the consumed prefix.
func (p *termParser) until(delims string) (string, error) {
	for i := p.pos; i < len(p.src); i++ {
		if strings.IndexByte(delims, p.src[i]) >= 0 {
			out := p.src[p.pos:i]
			p.pos = i + 1
			return out, nil
		}
	}
	return "", fmt.Errorf("fingerprint: missing %q after %d in %q", delims, p.pos, p.src)
}

// canonicalAssumptions encodes a symbolic context's assumption set:
// sorted canonical scalars (each recorded as expr ≥ 0).
func canonicalAssumptions(ctx *sym.Context) string {
	var keys []string
	for _, a := range ctx.Assumptions() {
		keys = append(keys, CanonicalExpr(a))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// ConeHasher computes the per-operator cone fingerprint over one G_s
// and its input relation. The fingerprint of a node is the hash of its
// canonical encoding — operator, attributes, output shapes — chained
// through the fingerprints of its producers, with graph-input tensors
// identified by their position in g.Inputs plus the canonical,
// lexicographically sorted encodings of their input-relation entries.
// The recursion makes the hash cover exactly the upstream cone: a
// change anywhere upstream changes the hash, a change elsewhere in the
// graph does not.
type ConeHasher struct {
	g     *graph.Graph
	inPos map[graph.TensorID]int
	rel   *relation.Relation // nil when hashing a bare graph (G_d)
	gdix  *GdIndex           // resolves G_d leaves inside rel's terms
	memo  map[graph.NodeID]Hash
}

// NewConeHasher builds a hasher for g. ri carries the input-relation
// entries folded into graph-input identities, with their G_d leaves
// canonicalized through gdix; both nil hashes the bare structure
// (used for G_d's whole-graph digest).
func NewConeHasher(g *graph.Graph, ri *relation.Relation, gdix *GdIndex) *ConeHasher {
	inPos := make(map[graph.TensorID]int, len(g.Inputs))
	for i, id := range g.Inputs {
		inPos[id] = i
	}
	return &ConeHasher{g: g, inPos: inPos, rel: ri, gdix: gdix, memo: make(map[graph.NodeID]Hash, len(g.Nodes))}
}

// Node returns the cone fingerprint of node id, memoized.
func (c *ConeHasher) Node(id graph.NodeID) Hash {
	if h, ok := c.memo[id]; ok {
		return h
	}
	n := c.g.Node(id)
	var b strings.Builder
	b.WriteString("node|op=")
	b.WriteString(string(n.Op))
	b.WriteString("|str=")
	b.WriteString(n.Str)
	b.WriteString("|ints=")
	for i, e := range n.Ints {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CanonicalExpr(e))
	}
	for _, in := range n.Inputs {
		b.WriteString("|in=")
		c.writeTensorDesc(&b, in)
	}
	for _, out := range n.Outputs {
		b.WriteString("|out=")
		b.WriteString(CanonicalShape(c.g.Tensor(out).Shape))
	}
	h := sum([]byte(b.String()))
	c.memo[id] = h
	return h
}

// writeTensorDesc encodes a tensor's structural identity: produced
// tensors chain to their producer's cone fingerprint and output index;
// graph inputs use their declared position, shape, and (when a
// relation is attached) their sorted canonical relation entries.
func (c *ConeHasher) writeTensorDesc(b *strings.Builder, id graph.TensorID) {
	t := c.g.Tensor(id)
	if t.Producer != graph.NoProducer {
		fmt.Fprintf(b, "p%s.%d", c.Node(t.Producer).Hex(), t.OutIndex)
		return
	}
	pos, ok := c.inPos[id]
	if !ok {
		pos = -1
	}
	fmt.Fprintf(b, "i%d@%s", pos, CanonicalShape(t.Shape))
	if c.rel == nil {
		return
	}
	var entries []string
	for _, m := range c.rel.Get(id) {
		entries = append(entries, CanonicalTerm(m, c.gdix))
	}
	sort.Strings(entries)
	b.WriteString("&rel=")
	b.WriteString(strings.Join(entries, ";"))
}

// GraphDigest returns the whole-graph structural digest of g: the
// sorted multiset of every node's cone fingerprint, the declared
// inputs' shapes in order, the declared outputs' structural
// identities in order, and the symbolic assumptions. It identifies
// G_d inside the ambient configuration: every node can be folded by
// the frontier exploration, so all of them are semantic.
func GraphDigest(g *graph.Graph) Hash {
	c := NewConeHasher(g, nil, nil)
	var nodes []string
	for _, n := range g.Nodes {
		nodes = append(nodes, c.Node(n.ID).Hex())
	}
	sort.Strings(nodes)
	var b strings.Builder
	b.WriteString("graph|nodes=")
	b.WriteString(strings.Join(nodes, ","))
	b.WriteString("|inputs=")
	for i, in := range g.Inputs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(CanonicalShape(g.Tensor(in).Shape))
	}
	b.WriteString("|outputs=")
	for i, out := range g.Outputs {
		if i > 0 {
			b.WriteByte(',')
		}
		c.writeTensorDesc(&b, out)
	}
	b.WriteString("|assume=")
	b.WriteString(canonicalAssumptions(g.Ctx))
	return sum([]byte(b.String()))
}

// Ambient digests the run-level configuration shared by every key of
// one check: a checker version tag, the lemma-registry fingerprint,
// the caller's canonical options encoding, the G_d digest, and the
// G_s-side symbolic assumptions (they parameterize every per-operator
// e-graph through the merged context).
func Ambient(version, registryFP string, options []byte, gd Hash, gsCtx *sym.Context) Hash {
	var b strings.Builder
	b.WriteString("ambient|v=")
	b.WriteString(version)
	b.WriteString("|reg=")
	b.WriteString(registryFP)
	b.WriteString("|opt=")
	b.Write(options)
	b.WriteString("|gd=")
	b.WriteString(gd.Hex())
	b.WriteString("|assume=")
	if gsCtx != nil {
		b.WriteString(canonicalAssumptions(gsCtx))
	}
	return sum([]byte(b.String()))
}

// Key combines the ambient digest with one operator's cone fingerprint
// into the verdict-cache key.
func Key(ambient, cone Hash) Hash {
	data := make([]byte, 0, 4+2*sha256.Size)
	data = append(data, "key|"...)
	data = append(data, ambient[:]...)
	data = append(data, cone[:]...)
	return sum(data)
}
