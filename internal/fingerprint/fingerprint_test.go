package fingerprint

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"entangle/internal/egraph"
	"entangle/internal/expr"
	"entangle/internal/exprparse"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/models"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

func gptPair(t *testing.T) *models.Built {
	t.Helper()
	b, err := models.GPT(models.Options{Cfg: models.GPTConfig(), TP: 2})
	if err != nil {
		t.Fatalf("building GPT: %v", err)
	}
	return b
}

// roundTrip pushes a graph through the JSON interchange format, which
// reassigns node and tensor IDs in topological order.
func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("writing graph: %v", err)
	}
	out, err := graph.Read(&buf)
	if err != nil {
		t.Fatalf("re-reading graph: %v", err)
	}
	return out
}

// rebindRelation re-parses ri's textual form against re-read copies of
// both graphs, exactly as the CLI does with its relation sidecar.
func rebindRelation(t *testing.T, ri *relation.Relation, gs, gs2, gd2 *graph.Graph) *relation.Relation {
	t.Helper()
	out := relation.New()
	for _, id := range ri.Tensors() {
		t2, ok := gs2.TensorByName(gs.Tensor(id).Name)
		if !ok {
			t.Fatalf("re-read G_s lost tensor %q", gs.Tensor(id).Name)
		}
		for _, m := range ri.Get(id) {
			term, err := exprparse.Parse(m.String(), func(name string) (*expr.Term, error) {
				gdT, ok := gd2.TensorByName(name)
				if !ok {
					t.Fatalf("re-read G_d lost tensor %q", name)
				}
				return relation.GdLeaf(gdT), nil
			})
			if err != nil {
				t.Fatalf("re-parsing %q: %v", m, err)
			}
			out.Add(t2.ID, term)
		}
	}
	return out
}

func gdIndex(t *testing.T, gd *graph.Graph) *GdIndex {
	t.Helper()
	ix, err := NewGdIndex(gd)
	if err != nil {
		t.Fatalf("indexing %q: %v", gd.Name, err)
	}
	return ix
}

// coneSet returns the sorted multiset of per-node cone fingerprints.
func coneSet(g *graph.Graph, ri *relation.Relation, ix *GdIndex) []string {
	c := NewConeHasher(g, ri, ix)
	var out []string
	for _, n := range g.Nodes {
		out = append(out, c.Node(n.ID).Hex())
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Two independent constructions of the same model must agree: map
// iteration order anywhere in the build pipeline must not leak into
// the hashes.
func TestIndependentBuildsAgree(t *testing.T) {
	a, b := gptPair(t), gptPair(t)
	if GraphDigest(a.Gd) != GraphDigest(b.Gd) {
		t.Error("G_d digests differ across independent builds")
	}
	if !equalStrings(coneSet(a.Gs, a.Ri, gdIndex(t, a.Gd)), coneSet(b.Gs, b.Ri, gdIndex(t, b.Gd))) {
		t.Error("cone fingerprints differ across independent builds")
	}
}

// A WriteGraph→ReadGraph round trip renumbers node and tensor IDs in
// topological order; the fingerprints must not notice.
func TestRoundTripStable(t *testing.T) {
	m := gptPair(t)
	gs2, gd2 := roundTrip(t, m.Gs), roundTrip(t, m.Gd)
	ri2 := rebindRelation(t, m.Ri, m.Gs, gs2, gd2)

	if GraphDigest(m.Gd) != GraphDigest(gd2) {
		t.Error("G_d digest changed across JSON round trip")
	}
	if GraphDigest(m.Gs) != GraphDigest(gs2) {
		t.Error("G_s digest changed across JSON round trip")
	}
	if !equalStrings(coneSet(m.Gs, m.Ri, gdIndex(t, m.Gd)), coneSet(gs2, ri2, gdIndex(t, gd2))) {
		t.Error("cone fingerprints changed across JSON round trip")
	}
}

// JSON object field order is not semantic: a re-marshal through
// map[string]any (which sorts keys alphabetically, unlike the struct
// encoder's declaration order) must decode to the same digests.
func TestJSONFieldReorderStable(t *testing.T) {
	m := gptPair(t)
	for _, g := range []*graph.Graph{m.Gs, m.Gd} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var generic any
		if err := json.Unmarshal(data, &generic); err != nil {
			t.Fatal(err)
		}
		reordered, err := json.Marshal(generic)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(data, reordered) {
			t.Fatal("re-marshal did not change field order; test is vacuous")
		}
		g2, err := graph.Read(bytes.NewReader(reordered))
		if err != nil {
			t.Fatalf("reading reordered JSON: %v", err)
		}
		if GraphDigest(g) != GraphDigest(g2) {
			t.Errorf("digest of %q changed under JSON field reordering", g.Name)
		}
	}
}

// Node labels and tensor names are display metadata; renaming them all
// must not move any hash.
func TestRenameInvariant(t *testing.T) {
	m := gptPair(t)
	before := GraphDigest(m.Gd)
	cones := coneSet(m.Gs, m.Ri, gdIndex(t, m.Gd))

	for _, g := range []*graph.Graph{m.Gs, m.Gd} {
		for _, n := range g.Nodes {
			n.Label = "renamed/" + n.Label
		}
		for _, tn := range g.Tensors {
			tn.Name = "renamed/" + tn.Name
		}
	}
	if GraphDigest(m.Gd) != before {
		t.Error("G_d digest changed under renaming")
	}
	if !equalStrings(coneSet(m.Gs, m.Ri, gdIndex(t, m.Gd)), cones) {
		t.Error("cone fingerprints changed under renaming")
	}
}

// small builds a two-branch graph: branch A (transpose) and branch B
// (scale by num/den) are independent, both feeding graph outputs.
func small(t *testing.T, dim int64, num int64) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder("small", sym.NewContext())
	x := b.Input("x", shape.Shape{sym.Const(4), sym.Const(dim)})
	y := b.Input("y", shape.Shape{sym.Const(4), sym.Const(4)})
	ta := b.Transpose("a", x, 0, 1)
	sb := b.Scale("b", y, num, 2)
	b.Output(ta, sb)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, g.Tensor(ta).Producer, g.Tensor(sb).Producer
}

// Cone locality: a change to one branch must change that branch's cone
// fingerprint and the whole-graph digest, but not the other branch's.
func TestConeLocalityAndSensitivity(t *testing.T) {
	g1, a1, b1 := small(t, 4, 3)
	g2, a2, b2 := small(t, 4, 5) // branch B scales differently
	g3, _, _ := small(t, 8, 3)   // input shape differs

	c1, c2 := NewConeHasher(g1, nil, nil), NewConeHasher(g2, nil, nil)
	if c1.Node(a1) != c2.Node(a2) {
		t.Error("untouched branch's cone fingerprint moved")
	}
	if c1.Node(b1) == c2.Node(b2) {
		t.Error("changed attribute did not change the cone fingerprint")
	}
	if GraphDigest(g1) == GraphDigest(g2) {
		t.Error("changed attribute did not change the graph digest")
	}
	if GraphDigest(g1) == GraphDigest(g3) {
		t.Error("changed input shape did not change the graph digest")
	}
}

// Cone stability under graph edits is what the diff planner's dirty
// set rests on: after editing ONE operator, every untouched operator
// must keep its exact cone fingerprint even when the edited graph is
// also renamed wholesale and pushed through the JSON round trip (which
// renumbers node and tensor IDs in topological order). Only the edited
// operator and its downstream cone may move.
func TestConeStableUnderGraphEdits(t *testing.T) {
	// adder → act is the edited chain; side is the untouched branch.
	build := func(swap bool) (*graph.Graph, [3]graph.NodeID) {
		b := graph.NewBuilder("gs", sym.NewContext())
		sh := shape.Shape{sym.Const(4), sym.Const(4)}
		x, y, v := b.Input("x", sh), b.Input("y", sh), b.Input("v", sh)
		a, c := x, y
		if swap {
			a, c = y, x
		}
		s := b.Add("adder", a, c)
		z := b.Unary("act", "gelu", s)
		u := b.Unary("side", "gelu", v)
		b.Output(z, u)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g, [3]graph.NodeID{g.Tensor(s).Producer, g.Tensor(z).Producer, g.Tensor(u).Producer}
	}
	oldG, oldIDs := build(false)
	newG, _ := build(true)
	for _, n := range newG.Nodes {
		n.Label = "renamed/" + n.Label
	}
	for _, tn := range newG.Tensors {
		tn.Name = "renamed_" + tn.Name
	}
	newG = roundTrip(t, newG)
	// Recover the renumbered IDs structurally: the round trip reassigns
	// IDs in topological order, and labels survive the trip.
	var newIDs [3]graph.NodeID
	for _, n := range newG.Nodes {
		switch n.Label {
		case "renamed/adder":
			newIDs[0] = n.ID
		case "renamed/act":
			newIDs[1] = n.ID
		case "renamed/side":
			newIDs[2] = n.ID
		}
	}
	oldCones := NewConeHasher(oldG, nil, nil)
	newCones := NewConeHasher(newG, nil, nil)
	if oldCones.Node(oldIDs[2]) != newCones.Node(newIDs[2]) {
		t.Error("untouched operator's cone fingerprint moved under edit+rename+renumber")
	}
	if oldCones.Node(oldIDs[0]) == newCones.Node(newIDs[0]) {
		t.Error("operand swap did not change the edited operator's cone fingerprint")
	}
	if oldCones.Node(oldIDs[1]) == newCones.Node(newIDs[1]) {
		t.Error("operand swap did not propagate to the downstream cone")
	}
}

// Input-relation entries are part of a cone that consumes them.
func TestRelationEntersCone(t *testing.T) {
	g, a, _ := small(t, 4, 3)
	gd := graph.NewBuilder("dist", sym.NewContext())
	x0 := gd.Input("x0", shape.Shape{sym.Const(4), sym.Const(2)})
	x1 := gd.Input("x1", shape.Shape{sym.Const(4), sym.Const(2)})
	dg, err := gd.Build()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(dim int64) *relation.Relation {
		ri := relation.New()
		ri.Add(g.Inputs[0], expr.New(expr.OpConcat, []sym.Expr{sym.Const(dim)}, "",
			relation.GdLeaf(dg.Tensor(x0)), relation.GdLeaf(dg.Tensor(x1))))
		return ri
	}
	ix := gdIndex(t, dg)
	h1 := NewConeHasher(g, mk(1), ix).Node(a)
	h1b := NewConeHasher(g, mk(1), ix).Node(a)
	h0 := NewConeHasher(g, mk(0), ix).Node(a)
	if h1 != h1b {
		t.Error("identical relations hash differently")
	}
	if h1 == h0 {
		t.Error("changed relation entry did not change the cone fingerprint")
	}
}

func TestAmbientSensitivity(t *testing.T) {
	m := gptPair(t)
	gd := GraphDigest(m.Gd)
	reg := lemmas.Default().Fingerprint()
	base := Ambient("v1", reg, []byte("iters=16"), gd, m.Gs.Ctx)

	if Ambient("v1", reg, []byte("iters=16"), gd, m.Gs.Ctx) != base {
		t.Error("ambient digest unstable")
	}
	if Ambient("v2", reg, []byte("iters=16"), gd, m.Gs.Ctx) == base {
		t.Error("checker version does not move the ambient digest")
	}
	if Ambient("v1", reg, []byte("iters=32"), gd, m.Gs.Ctx) == base {
		t.Error("budget option does not move the ambient digest")
	}
	if Ambient("v1", reg+"x", []byte("iters=16"), gd, m.Gs.Ctx) == base {
		t.Error("registry fingerprint does not move the ambient digest")
	}
	other := GraphDigest(m.Gs)
	if Ambient("v1", reg, []byte("iters=16"), other, m.Gs.Ctx) == base {
		t.Error("G_d digest does not move the ambient digest")
	}
	k := Key(base, gd)
	if Key(base, gd) != k || Key(base, other) == k || Key(Ambient("v2", reg, nil, gd, nil), gd) == k {
		t.Error("Key is not a stable injective-looking combiner")
	}
}

// The lemma-registry fingerprint: stable across constructions, moved
// by any lemma addition.
func TestRegistryFingerprint(t *testing.T) {
	a, b := lemmas.Default(), lemmas.Default()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("registry fingerprint differs across identical constructions")
	}
	before := b.Fingerprint()
	b.MustRegister(&lemmas.Lemma{Name: "test-extra", Kind: lemmas.KindGeneral, Complexity: 1,
		Rules: []*egraph.Rule{{Name: "test-extra-rule"}}})
	if b.Fingerprint() == before {
		t.Error("registering a lemma did not move the registry fingerprint")
	}
	if a.Fingerprint() != before {
		t.Error("unrelated registry's fingerprint moved")
	}
}

// The canonical term codec: decode inverts encode, rebinding display
// names from the current graphs.
func TestTermCodecRoundTrip(t *testing.T) {
	m := gptPair(t)
	ix := gdIndex(t, m.Gd)
	name := func(space byte, id graph.TensorID) string {
		return m.Gs.Tensor(id).Name
	}
	n := 0
	for _, id := range m.Ri.Tensors() {
		for _, term := range m.Ri.Get(id) {
			enc := CanonicalTerm(term, ix)
			back, err := DecodeTerm(enc, ix, name)
			if err != nil {
				t.Fatalf("decoding %q: %v", enc, err)
			}
			if back.Key() != term.Key() {
				t.Errorf("round trip changed term: %q -> %q", term.Key(), back.Key())
			}
			if CanonicalTerm(back, ix) != enc {
				t.Errorf("re-encode changed bytes for %q", enc)
			}
			if back.String() != term.String() {
				t.Errorf("name rebinding lost display names: %q vs %q", back, term)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no relation terms exercised")
	}
	// A deep mixed-space term with attributes.
	deep := expr.New(expr.OpConcat, []sym.Expr{sym.Const(1)}, "",
		expr.New(expr.OpTranspose, []sym.Expr{sym.Const(0), sym.Const(1)}, "",
			expr.Tensor(3, "s3")),
		expr.Tensor(relation.GdOffset+7, "d7"))
	back, err := DecodeTerm(CanonicalTerm(deep, nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != deep.Key() {
		t.Errorf("deep term round trip: %q vs %q", back.Key(), deep.Key())
	}
}

// Corrupt encodings must come back as errors, never panics — the cache
// treats them as misses.
func TestDecodeTermErrors(t *testing.T) {
	cases := []string{
		"",                          // empty
		"q1",                        // bad leaf space
		"s",                         // leaf without id
		"(concat|",                  // truncated header
		"(concat||1|s0;s1",          // unterminated args
		"(transpose||0,1|s0;s1)",    // arity violation (unary op, 2 args)
		"(concat||1|s0;s1)trailing", // trailing input
		"(concat||1|s0?s1)",         // bad separator
		"(nosuchop|||s0)",           // unknown op (arity panic path)
		strings.Repeat("(concat||1|", 4) + "s0" + strings.Repeat(")", 3), // unbalanced
	}
	for _, src := range cases {
		if got, err := DecodeTerm(src, nil, nil); err == nil {
			t.Errorf("DecodeTerm(%q) = %v, want error", src, got)
		}
	}
	// An out-of-range G_d ordinal against a real index is an error too.
	m := gptPair(t)
	if got, err := DecodeTerm("d99999", gdIndex(t, m.Gd), nil); err == nil {
		t.Errorf("DecodeTerm out-of-range ordinal = %v, want error", got)
	}
}
