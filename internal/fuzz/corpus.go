package fuzz

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"entangle/internal/graph"
)

// CorpusCase is one replayable minimized case. The digests pin the
// exact graphs the plan built when the case was recorded, so replay
// doubles as a byte-level reproducibility gate.
type CorpusCase struct {
	Name     string  `json:"name"`
	Plan     Plan    `json:"plan"`
	Defect   *Defect `json:"defect,omitempty"`
	Expect   Outcome `json:"expect"`
	GapKey   string  `json:"gap_key,omitempty"`
	GsSHA256 string  `json:"gs_sha256"`
	GdSHA256 string  `json:"gd_sha256"`
	Note     string  `json:"note,omitempty"`
}

// Digest hashes a graph's canonical JSON encoding.
func Digest(g *graph.Graph) (string, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// NewCorpusCase records a case with its graph digests.
func NewCorpusCase(name string, res *Result, note string) (CorpusCase, error) {
	cc := CorpusCase{
		Name:   name,
		Plan:   res.Case.Plan,
		Defect: res.Case.Defect,
		Expect: res.Outcome,
		GapKey: res.GapKey,
		Note:   note,
	}
	var err error
	if cc.GsSHA256, err = Digest(res.Case.Gs); err != nil {
		return cc, err
	}
	if cc.GdSHA256, err = Digest(res.Case.Gd); err != nil {
		return cc, err
	}
	return cc, nil
}

// SaveCorpus writes one pretty-printed JSON file per case into dir.
func SaveCorpus(dir string, cases []CorpusCase) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range cases {
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(c.Name, "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadCorpus reads every *.json case in dir, sorted by file name.
func LoadCorpus(dir string) ([]CorpusCase, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]CorpusCase, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		var c CorpusCase
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", n, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// Replay rebuilds a corpus case, verifies the graphs reproduce
// byte-for-byte, re-evaluates, and checks the outcome. A formerly
// failing case that now does better (a lemma gap that closed, an
// inconclusive injection now disproved) reports improved=true instead
// of an error; anything else that diverges is an error.
func Replay(c CorpusCase, workers int) (improved bool, err error) {
	cs, err := Compose(c.Plan, c.Defect)
	if err != nil {
		return false, fmt.Errorf("fuzz: replay %s: %w", c.Name, err)
	}
	gsD, err := Digest(cs.Gs)
	if err != nil {
		return false, err
	}
	gdD, err := Digest(cs.Gd)
	if err != nil {
		return false, err
	}
	if gsD != c.GsSHA256 || gdD != c.GdSHA256 {
		return false, fmt.Errorf("fuzz: replay %s: graph digests diverged (G_s %s→%s, G_d %s→%s): generator no longer reproduces the corpus",
			c.Name, short(c.GsSHA256), short(gsD), short(c.GdSHA256), short(gdD))
	}
	res, err := Evaluate(cs, workers)
	if err != nil {
		return false, fmt.Errorf("fuzz: replay %s: %w", c.Name, err)
	}
	if res.Outcome == c.Expect {
		return false, nil
	}
	if c.Expect == OutcomeLemmaGap && (res.Outcome == OutcomeAgree || res.Outcome == OutcomeRediscovered) {
		return true, nil
	}
	return false, fmt.Errorf("fuzz: replay %s: outcome %s, corpus expects %s", c.Name, res.Outcome, c.Expect)
}

func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
