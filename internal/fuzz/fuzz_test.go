package fuzz

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// ---------------------------------------------------------------------
// RNG and plan determinism

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestParseFamilies(t *testing.T) {
	fs, err := ParseFamilies(nil)
	if err != nil || len(fs) != len(Families) {
		t.Fatalf("nil must mean all families: %v %v", fs, err)
	}
	fs, err = ParseFamilies([]string{"gpt", "chain"})
	if err != nil || len(fs) != 2 || fs[0] != FamilyGPT {
		t.Fatalf("parse: %v %v", fs, err)
	}
	if _, err := ParseFamilies([]string{"bert"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// ---------------------------------------------------------------------
// Generator reproducibility (satellite: same seed ⇒ byte-identical
// graphs across runs and worker counts)

func TestSameSeedIsByteIdentical(t *testing.T) {
	master := NewRNG(99)
	for i := 0; i < 10; i++ {
		p := RandomPlan(master, Families, 4)
		a, err := Compose(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := Compose(p, nil)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", p, err)
		}
		da1, _ := Digest(a.Gs)
		db1, _ := Digest(b.Gs)
		da2, _ := Digest(a.Gd)
		db2, _ := Digest(b.Gd)
		if da1 != db1 || da2 != db2 {
			t.Fatalf("%s: rebuild not byte-identical (G_s %s vs %s, G_d %s vs %s)", p, da1, db1, da2, db2)
		}
		if !reflect.DeepEqual(a.Sites, b.Sites) {
			t.Fatalf("%s: site census diverged: %v vs %v", p, a.Sites, b.Sites)
		}
	}
}

func TestVerdictIndependentOfWorkers(t *testing.T) {
	master := NewRNG(4242)
	for i := 0; i < 6; i++ {
		p := RandomPlan(master, []Family{FamilyChain}, 4)
		cs1, err := Compose(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cs4, err := Compose(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		r1, err := Evaluate(cs1, 1)
		if err != nil {
			t.Fatalf("%s: workers=1: %v", p, err)
		}
		r4, err := Evaluate(cs4, 4)
		if err != nil {
			t.Fatalf("%s: workers=4: %v", p, err)
		}
		if r1.Outcome != r4.Outcome || r1.GapKey != r4.GapKey {
			t.Fatalf("%s: outcome depends on workers: %s/%q vs %s/%q",
				p, r1.Outcome, r1.GapKey, r4.Outcome, r4.GapKey)
		}
		if r1.Report.RenderFailures() != r4.Report.RenderFailures() {
			t.Fatalf("%s: failure rendering depends on workers", p)
		}
	}
}

// ---------------------------------------------------------------------
// Injection machinery

// Every (class, site) pair counted by a correct build must fire when
// injected into a rebuild — the composer's determinism contract.
func TestEverySiteInCensusFires(t *testing.T) {
	master := NewRNG(77)
	for i := 0; i < 8; i++ {
		p := RandomPlan(master, []Family{FamilyChain}, 4)
		cs, err := Compose(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for _, cl := range Classes {
			for s := 0; s < cs.Sites[cl]; s++ {
				if _, err := Compose(p, &Defect{Class: cl, Site: s}); err != nil {
					t.Fatalf("%s: inject %s@%d: %v", p, cl, s, err)
				}
			}
		}
	}
}

// The campaign is the main property test: correct compositions must
// never disagree with the numeric oracle, injected defects must be
// disproved or surface as lemma gaps, and nothing may be unsound.
func TestCampaignProperties(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	stats, err := Run(Config{Seed: 1, N: n, Workers: 2, Shrink: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stats.Unsound > 0 {
		t.Fatalf("unsound cases: %d (%v)", stats.Unsound, stats.Repros)
	}
	if stats.Correct != n {
		t.Fatalf("correct cases: %d, want %d", stats.Correct, n)
	}
	if stats.Injected == 0 || stats.Rediscovered == 0 {
		t.Fatalf("no injections exercised: %+v", stats)
	}
	// Every outcome must be accounted for.
	if stats.Agree+stats.Rediscovered+stats.LemmaGaps+stats.Masked+stats.Unsound != stats.Cases {
		t.Fatalf("outcome counts do not add up: %+v", stats)
	}
}

// ---------------------------------------------------------------------
// Rediscovery of the paper's bug classes

func TestAllNineClassesRediscovered(t *testing.T) {
	for _, cl := range Classes {
		res, err := Rediscover(cl, 42, 2, 200)
		if err != nil {
			t.Errorf("%s: %v", cl, err)
			continue
		}
		if res.Outcome != OutcomeRediscovered {
			t.Errorf("%s: outcome %s, want %s", cl, res.Outcome, OutcomeRediscovered)
		}
		if res.Case.Defect == nil || res.Case.Defect.Class != cl {
			t.Errorf("%s: witness carries wrong defect %v", cl, res.Case.Defect)
		}
		if ops := res.Case.Gs.OperatorCount(); ops > 6 {
			t.Errorf("%s: shrunk witness still has %d operators", cl, ops)
		}
	}
}

// ---------------------------------------------------------------------
// Shrinker

func TestShrinkerMinimizes(t *testing.T) {
	// A deep chain with a defect: the shrinker must strip unrelated
	// blocks while preserving the disproof.
	p := Plan{Seed: 5, Family: FamilyChain, Degree: 2,
		Blocks: []int{blockFFN, blockUnary, blockRMSNorm, blockSoftmax}, Head: headMSE}
	cs, err := Compose(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var d *Defect
	for _, cl := range Classes {
		if cs.Sites[cl] > 0 && !cl.NumericBenign() {
			d = &Defect{Class: cl, Site: 0}
			break
		}
	}
	if d == nil {
		t.Skip("no injectable site in this plan")
	}
	orig, err := Compose(p, d)
	if err != nil {
		t.Fatal(err)
	}
	origRes, err := Evaluate(orig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if origRes.Outcome == OutcomeAgree {
		t.Fatalf("injected case evaluated as agree")
	}
	small, res, err := Shrink(p, d, 2, func(r *Result) bool { return r.Outcome == origRes.Outcome })
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != origRes.Outcome {
		t.Fatalf("shrunk outcome %s, want %s", res.Outcome, origRes.Outcome)
	}
	if len(small.Blocks) >= len(p.Blocks) && small.Head == p.Head {
		t.Fatalf("shrinker removed nothing: %s -> %s", p, small)
	}
}

// ---------------------------------------------------------------------
// Corpus

func TestCorpusRoundTrip(t *testing.T) {
	res, err := Rediscover(DefectGatherOrder, 7, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCorpusCase("roundtrip", res, "test")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveCorpus(dir, []CorpusCase{cc}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || !reflect.DeepEqual(loaded[0], cc) {
		t.Fatalf("round trip mismatch: %+v vs %+v", loaded, cc)
	}
	if _, err := Replay(loaded[0], 2); err != nil {
		t.Fatal(err)
	}
}

// The committed corpus holds one minimized Disproved witness per paper
// bug class; replay re-derives the graphs byte-for-byte and re-checks
// the verdicts.
func TestCommittedCorpusReplays(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != len(Classes) {
		t.Fatalf("committed corpus has %d cases, want one per class (%d)", len(cases), len(Classes))
	}
	seen := map[DefectClass]bool{}
	for _, c := range cases {
		improved, err := Replay(c, 2)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if improved {
			t.Logf("%s: corpus expectation improved (gap closed)", c.Name)
		}
		if c.Defect != nil {
			seen[c.Defect.Class] = true
		}
	}
	for _, cl := range Classes {
		if !seen[cl] {
			t.Errorf("no corpus witness for class %s", cl)
		}
	}
}

func TestLoadCorpusRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("malformed corpus file accepted")
	}
}
