package fuzz

import "fmt"

// DefectClass names one paper-Table-3-style defect the injector can
// plant into an otherwise correct composition. Every class is
// shape-safe: the mutated G_d still builds and type-checks, the
// numbers are just wrong (or, for missing-register, the input relation
// is incomplete) — exactly the bugs the paper's checker exists to
// catch.
type DefectClass string

const (
	// DefectRoPEOffset slices the per-rank rotary tables without the
	// rank offset — every rank rotates with rank 0's rows (bug 1).
	DefectRoPEOffset DefectClass = "rope-offset"
	// DefectAuxLossScale drops the 1/R scale on the token-split
	// auxiliary loss before the reduce (bug 2).
	DefectAuxLossScale DefectClass = "auxloss-scale"
	// DefectPadSlice reconstructs a padded gather with the unpadded
	// stride, keeping padding rows and dropping data rows (bug 3).
	DefectPadSlice DefectClass = "pad-slice"
	// DefectGatherOrder reassembles shards in rotated rank order —
	// the off-by-one shard-placement misconfiguration (bug 4/9 style).
	DefectGatherOrder DefectClass = "gather-order"
	// DefectMissingRegister declares per-rank weight copies without
	// registering them in the input relation R_i: the graphs may even
	// agree numerically, but refinement is unverifiable and the
	// checker must disprove it (bug 5: missing weight registration).
	DefectMissingRegister DefectClass = "missing-register"
	// DefectAccumScale drops the 1/R scale on microbatch-split losses
	// — unscaled gradient accumulation (bug 6).
	DefectAccumScale DefectClass = "accum-scale"
	// DefectMissingCollective drops the all-reduce that combines
	// partial products; ranks consume their own partial as if it were
	// the full value (bug 7).
	DefectMissingCollective DefectClass = "missing-collective"
	// DefectDoubleReduce all-reduces an already-replicated value as if
	// it were partial, overcounting by the degree R (bug 8 style:
	// misplaced gradient sync).
	DefectDoubleReduce DefectClass = "double-reduce"
	// DefectScatterNoReduce replaces a reduce-scatter with a local
	// slice: each rank keeps its own partial's rows and never sees its
	// peers' contributions (bug 9 style: wrong reduce op).
	DefectScatterNoReduce DefectClass = "scatter-no-reduce"
)

// Classes is the canonical injection order: all nine paper bug classes.
var Classes = []DefectClass{
	DefectRoPEOffset,
	DefectAuxLossScale,
	DefectPadSlice,
	DefectGatherOrder,
	DefectMissingRegister,
	DefectAccumScale,
	DefectMissingCollective,
	DefectDoubleReduce,
	DefectScatterNoReduce,
}

// PaperBug maps a class to the §6.2 Table-3 bug it reproduces in
// spirit.
func (c DefectClass) PaperBug() int {
	switch c {
	case DefectRoPEOffset:
		return 1
	case DefectAuxLossScale:
		return 2
	case DefectPadSlice:
		return 3
	case DefectGatherOrder:
		return 4
	case DefectMissingRegister:
		return 5
	case DefectAccumScale:
		return 6
	case DefectMissingCollective:
		return 7
	case DefectDoubleReduce:
		return 8
	case DefectScatterNoReduce:
		return 9
	}
	return 0
}

// NumericBenign reports whether the class corrupts only the relation,
// not the computed values: such graphs must still be disproved (no
// clean mapping exists) even though the numeric differential agrees.
func (c DefectClass) NumericBenign() bool { return c == DefectMissingRegister }

// Defect selects one injection: a class and which of the composition's
// sites of that class (in emission order) to corrupt.
type Defect struct {
	Class DefectClass `json:"class"`
	Site  int         `json:"site"`
}

func (d Defect) String() string { return fmt.Sprintf("%s@%d", d.Class, d.Site) }
