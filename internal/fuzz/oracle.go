package fuzz

import (
	"errors"
	"fmt"
	"math/rand"

	"entangle/internal/core"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/relation"
)

// Outcome classifies one case after both the checker and the numeric
// differential have spoken.
type Outcome string

const (
	// OutcomeAgree: a correct composition refined, and the verified
	// relation matched the numeric ground truth.
	OutcomeAgree Outcome = "agree"
	// OutcomeRediscovered: an injected defect was disproved — the
	// checker caught the bug.
	OutcomeRediscovered Outcome = "rediscovered"
	// OutcomeLemmaGap: the checker was weaker than the ground truth —
	// a correct composition it could not refine, or an injected defect
	// it could only call inconclusive. GapKey names the gap.
	OutcomeLemmaGap Outcome = "lemma-gap"
	// OutcomeMasked: an injected defect that turned out semantically
	// harmless (the checker refined it AND the numerics agree — e.g. a
	// double reduce feeding a scale-invariant rmsnorm).
	OutcomeMasked Outcome = "masked"
	// OutcomeUnsound: the checker refined a graph the numeric
	// differential rejects (or accepted a relation that omits the
	// tensors actually computed with). The one outcome that must never
	// happen.
	OutcomeUnsound Outcome = "unsound"
)

// Result is the oracle's verdict on one case.
type Result struct {
	Case    *Case
	Report  *core.Report
	Refined bool
	// NumericAgree is the differential verdict: every G_s output was
	// reconstructed from the per-rank G_d outputs and compared.
	NumericAgree bool
	MaxDiff      float64
	Outcome      Outcome
	// GapKey identifies a lemma gap: "<op>/<verdict>" of the first
	// failing operator. Empty unless Outcome is OutcomeLemmaGap.
	GapKey string
}

// numTol is the agreement tolerance for the numeric differential; the
// graphs are tiny, so anything past float noise is a real divergence.
const numTol = 1e-6

// Evaluate runs the checker and the numeric differential on one case
// and classifies the combination. workers sets the checker's
// parallelism (results must not depend on it).
func Evaluate(cs *Case, workers int) (*Result, error) {
	report, cerr := core.NewChecker(core.Options{KeepGoing: true, Workers: workers}).
		Check(cs.Gs, cs.Gd, cs.Env.Ri)
	if report == nil {
		return nil, fmt.Errorf("fuzz: %s: checker: %v", cs.Plan, cerr)
	}
	res := &Result{Case: cs, Report: report, Refined: cerr == nil}

	agree, maxDiff, err := diffNumeric(cs, report.OutputRelation)
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: numeric differential: %w", cs.Plan, err)
	}
	res.NumericAgree = agree
	res.MaxDiff = maxDiff

	res.Outcome, res.GapKey = classify(cs, res)
	return res, nil
}

func classify(cs *Case, res *Result) (Outcome, string) {
	injected := cs.Defect != nil
	if res.Refined {
		switch {
		case !injected && res.NumericAgree:
			return OutcomeAgree, ""
		case injected && res.NumericAgree && !cs.Defect.Class.NumericBenign():
			// The injection dissolved semantically; nothing to catch.
			return OutcomeMasked, ""
		default:
			// Refined against a numeric counterexample, or refined a
			// relation that never mentions the tensors G_d computes
			// with (missing-register): soundness is broken.
			return OutcomeUnsound, ""
		}
	}
	disproved := false
	for _, f := range res.Report.Failures {
		if f.Kind == core.VerdictDisproved {
			disproved = true
			break
		}
	}
	if injected && disproved {
		return OutcomeRediscovered, ""
	}
	// A correct composition the checker could not refine, or an
	// injected defect it could only call inconclusive: a lemma gap.
	return OutcomeLemmaGap, gapKey(res.Report)
}

// gapKey fingerprints a lemma gap by the first failing operator's kind
// and verdict, so campaigns can count unique gaps instead of raw
// failures.
func gapKey(report *core.Report) string {
	if len(report.Failures) == 0 {
		return "output-resolution"
	}
	f := report.Failures[0]
	return fmt.Sprintf("%s/%s", f.Op.Op, f.Kind)
}

// diffNumeric evaluates both graphs on seeded concrete inputs, splits
// the sequential inputs with the recorded derivations, reconstructs
// every sequential output from the per-rank outputs using the
// composer's layout bindings, and compares. When the checker produced
// a verified output relation, every one of its mappings is evaluated
// and compared too — a refined case must agree both through the
// composer's own layout bookkeeping and through the checker's proof.
func diffNumeric(cs *Case, verified *relation.Relation) (agree bool, maxDiff float64, err error) {
	gsIn, err := ConcreteInputs(cs.Gs, cs.Plan.Seed)
	if err != nil {
		return false, 0, err
	}
	gsVals, err := numeric.EvalGraph(cs.Gs, gsIn, nil)
	if err != nil {
		return false, 0, fmt.Errorf("eval G_s: %w", err)
	}
	gdIn, err := cs.Env.SplitInputs(gsIn)
	if err != nil {
		return false, 0, err
	}
	gdVals, err := numeric.EvalGraph(cs.Gd, gdIn, nil)
	if err != nil {
		return false, 0, fmt.Errorf("eval G_d: %w", err)
	}

	agree = true
	for _, ob := range cs.outs {
		want := gsVals[ob.gs]
		var got []*numeric.Dense
		for _, id := range ob.ids {
			v, ok := gdVals[id]
			if !ok {
				return false, 0, fmt.Errorf("no value for G_d tensor %d", id)
			}
			got = append(got, v)
		}
		var rec *numeric.Dense
		switch ob.kind {
		case stShared:
			rec = got[0]
		case stReplicated:
			// Every rank must hold the sequential value.
			rec = got[0]
			for _, g := range got[1:] {
				if d := numeric.MaxAbsDiff(rec, g); d > maxDiff {
					maxDiff = d
				}
				if !numeric.AllClose(rec, g, numTol) {
					agree = false
				}
			}
		case stSharded:
			rec, err = numeric.Concat(ob.dim, got...)
		case stPartial:
			rec, err = numeric.SumN(got...)
		default:
			err = fmt.Errorf("unknown output layout %v", ob.kind)
		}
		if err != nil {
			return false, 0, err
		}
		if d := numeric.MaxAbsDiff(want, rec); d > maxDiff {
			maxDiff = d
		}
		if !numeric.AllClose(want, rec, numTol) {
			agree = false
		}
	}

	if verified != nil {
		lookup := mappingLookup(gdVals)
		for _, o := range cs.Gs.Outputs {
			want := gsVals[o]
			for _, m := range verified.Get(o) {
				got, err := numeric.EvalTerm(m, nil, lookup)
				if err != nil {
					return false, maxDiff, fmt.Errorf("eval verified mapping %s: %w", m, err)
				}
				if d := numeric.MaxAbsDiff(want, got); d > maxDiff {
					maxDiff = d
				}
				if !numeric.AllClose(want, got, numTol) {
					agree = false
				}
			}
		}
	}
	return agree, maxDiff, nil
}

// ConcreteInputs draws seeded concrete values for every graph input.
// Integer id tensors (embedding indices) get values inside the
// smallest consuming table's vocabulary.
func ConcreteInputs(gs *graph.Graph, seed uint64) (map[string]*numeric.Dense, error) {
	// The structural streams use splitmix64, but the numeric kernels
	// take a *rand.Rand; the stream is still fully determined by the
	// case seed.
	//lint:ignore determinism oracle input values are seeded from the case plan
	rng := rand.New(rand.NewSource(int64(seed ^ 0x5eed_0f_7e5707)))
	vocab := idVocab(gs)
	in := map[string]*numeric.Dense{}
	for _, id := range gs.Inputs {
		t := gs.Tensor(id)
		dims, err := t.Shape.Concrete(nil)
		if err != nil {
			return nil, fmt.Errorf("input %q has symbolic shape: %v", t.Name, err)
		}
		if hi, ok := vocab[id]; ok {
			in[t.Name] = numeric.RandInts(rng, hi, dims...)
		} else {
			in[t.Name] = numeric.Rand(rng, dims...)
		}
	}
	return in, nil
}

// idVocab maps integer-id input tensors to the extent of the smallest
// embedding table they index.
func idVocab(gs *graph.Graph) map[graph.TensorID]int {
	out := map[graph.TensorID]int{}
	for _, n := range gs.Nodes {
		if (n.Op != expr.OpEmbedding && n.Op != expr.OpEmbeddingShard) || len(n.Inputs) < 2 {
			continue
		}
		v, ok := gs.Tensor(n.Inputs[0]).Shape[0].IsConst()
		if !ok {
			continue
		}
		if cur, seen := out[n.Inputs[1]]; !seen || int(v) < cur {
			out[n.Inputs[1]] = int(v)
		}
	}
	return out
}

// mappingLookup adapts a G_d value map to numeric.EvalTerm's lookup.
func mappingLookup(gdVals map[graph.TensorID]*numeric.Dense) func(tid int) (*numeric.Dense, error) {
	return func(tid int) (*numeric.Dense, error) {
		if !relation.IsGd(tid) {
			return nil, errors.New("fuzz: relation mapping references a G_s tensor")
		}
		v, ok := gdVals[relation.GdTensorID(tid)]
		if !ok {
			return nil, errors.New("fuzz: relation mapping references an unevaluated tensor")
		}
		return v, nil
	}
}
