// Package fuzz is the randomized strategy fuzzer: a seeded composer
// that parallelizes sequential models with random legal combinations
// of the strategy-library primitives (TP column/row splits, SP
// gather/scatter, DP batch sharding, ZeRO-style weight gathering,
// vocab-parallel embeddings), a bug injector that plants
// paper-Table-3-style defects with recorded ground truth, a
// differential oracle that cross-checks every checker verdict against
// internal/numeric on concrete shapes, and a shrinker that minimizes
// disagreements into a replayable JSON corpus.
//
// Everything is deterministic: a plan (seed + family + structure)
// rebuilds the exact same G_s/G_d byte-for-byte, which is what makes
// corpus replay and cross-run reproducibility gates possible. The
// package is under the determinism lint contract (internal/lint); the
// one intentional randomness source — concrete tensor values for the
// numeric oracle — is seeded from the case and annotated in place.
package fuzz

// RNG is a splitmix64 stream. The fuzzer cannot use math/rand for
// structural decisions: plans must rebuild identically across
// platforms, Go versions, and worker counts, and splitmix64 is a
// fixed, trivially portable algorithm.
type RNG struct{ state uint64 }

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 advances the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fuzz: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool flips a fair coin.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// OneIn is true once per n draws on average.
func (r *RNG) OneIn(n int) bool { return r.Intn(n) == 0 }
