package fuzz

import (
	"fmt"
	"sort"
)

// Config parameterizes a fuzz campaign.
type Config struct {
	// Seed feeds the master stream that draws plans and injections.
	Seed uint64
	// N is the number of correct compositions; each also gets one
	// injection per defect class with an available site.
	N int
	// Families restricts the sequential-model sources (nil = all).
	Families []Family
	// MaxDegree bounds the parallelism degree (minimum 2).
	MaxDegree int
	// Workers sets the checker's parallelism per case.
	Workers int
	// Shrink minimizes the first case of every new gap key and every
	// unsound case before recording it.
	Shrink bool
	// OnCase, when set, observes every evaluated result (progress
	// reporting in the CLI).
	OnCase func(*Result)
}

// ClassStats aggregates injection outcomes for one defect class.
type ClassStats struct {
	Injected     int `json:"injected"`
	Rediscovered int `json:"rediscovered"`
	LemmaGap     int `json:"lemma_gap"`
	Masked       int `json:"masked"`
	Unsound      int `json:"unsound"`
}

// Stats summarizes a campaign.
type Stats struct {
	Cases        int `json:"cases"` // total compositions evaluated
	Correct      int `json:"correct"`
	Injected     int `json:"injected"`
	Agree        int `json:"agree"`
	Rediscovered int `json:"rediscovered"`
	LemmaGaps    int `json:"lemma_gaps"`
	Masked       int `json:"masked"`
	Unsound      int `json:"unsound"`
	// GapKeys counts occurrences per unique lemma-gap fingerprint.
	GapKeys map[string]int `json:"gap_keys,omitempty"`
	// ByClass aggregates injection outcomes per defect class.
	ByClass map[DefectClass]*ClassStats `json:"by_class,omitempty"`
	// Repros holds minimized corpus cases: every unsound result and
	// the first (shrunk) witness of each gap key.
	Repros []CorpusCase `json:"repros,omitempty"`
}

// UniqueGaps is the number of distinct lemma-gap fingerprints seen.
func (s *Stats) UniqueGaps() int { return len(s.GapKeys) }

// SortedGapKeys returns the gap fingerprints in deterministic order.
func (s *Stats) SortedGapKeys() []string {
	keys := make([]string, 0, len(s.GapKeys))
	for k := range s.GapKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run executes a fuzz campaign: N random correct compositions, each
// checked and numerically cross-checked, then re-composed once per
// defect class that has an injection site, with every disagreement
// between checker and ground truth classified (and, when configured,
// shrunk into a replayable repro).
func Run(cfg Config) (*Stats, error) {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	if cfg.MaxDegree < 2 {
		cfg.MaxDegree = 2
	}
	families := cfg.Families
	if len(families) == 0 {
		families = Families
	}
	master := NewRNG(cfg.Seed)
	stats := &Stats{GapKeys: map[string]int{}, ByClass: map[DefectClass]*ClassStats{}}
	for _, cl := range Classes {
		stats.ByClass[cl] = &ClassStats{}
	}
	for i := 0; i < cfg.N; i++ {
		p := RandomPlan(master, families, cfg.MaxDegree)
		cs, err := Compose(p, nil)
		if err != nil {
			return stats, fmt.Errorf("fuzz: case %d: %w", i, err)
		}
		res, err := Evaluate(cs, cfg.Workers)
		if err != nil {
			return stats, fmt.Errorf("fuzz: case %d: %w", i, err)
		}
		if err := record(cfg, stats, res); err != nil {
			return stats, err
		}
		// One injection per class with a site in this composition; the
		// site index is drawn from the correct build's census.
		for _, cl := range Classes {
			n := cs.Sites[cl]
			if n == 0 {
				continue
			}
			d := &Defect{Class: cl, Site: master.Intn(n)}
			ics, err := Compose(p, d)
			if err != nil {
				return stats, fmt.Errorf("fuzz: case %d inject %s: %w", i, d, err)
			}
			ires, err := Evaluate(ics, cfg.Workers)
			if err != nil {
				return stats, fmt.Errorf("fuzz: case %d inject %s: %w", i, d, err)
			}
			if err := record(cfg, stats, ires); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

func record(cfg Config, stats *Stats, res *Result) error {
	stats.Cases++
	injected := res.Case.Defect != nil
	if injected {
		stats.Injected++
	} else {
		stats.Correct++
	}
	var cls *ClassStats
	if injected {
		cls = stats.ByClass[res.Case.Defect.Class]
		cls.Injected++
	}
	switch res.Outcome {
	case OutcomeAgree:
		stats.Agree++
	case OutcomeRediscovered:
		stats.Rediscovered++
		cls.Rediscovered++
	case OutcomeMasked:
		stats.Masked++
		cls.Masked++
	case OutcomeLemmaGap:
		stats.LemmaGaps++
		if cls != nil {
			cls.LemmaGap++
		}
		first := stats.GapKeys[res.GapKey] == 0
		stats.GapKeys[res.GapKey]++
		if first {
			if err := addRepro(cfg, stats, res, "first witness of this lemma gap"); err != nil {
				return err
			}
		}
	case OutcomeUnsound:
		stats.Unsound++
		if cls != nil {
			cls.Unsound++
		}
		if err := addRepro(cfg, stats, res, "UNSOUND: checker and numeric ground truth disagree"); err != nil {
			return err
		}
	}
	if cfg.OnCase != nil {
		cfg.OnCase(res)
	}
	return nil
}

// addRepro records a disagreement, shrunk first when configured.
func addRepro(cfg Config, stats *Stats, res *Result, note string) error {
	final := res
	if cfg.Shrink {
		wantOutcome, wantGap := res.Outcome, res.GapKey
		_, shrunk, err := Shrink(res.Case.Plan, res.Case.Defect, cfg.Workers, func(r *Result) bool {
			return r.Outcome == wantOutcome && r.GapKey == wantGap
		})
		if err == nil && shrunk != nil {
			final = shrunk
		}
	}
	name := fmt.Sprintf("%s-%04d", final.Outcome, stats.Cases)
	if res.GapKey != "" {
		name = fmt.Sprintf("gap-%s", sanitize(res.GapKey))
	}
	cc, err := NewCorpusCase(name, final, note)
	if err != nil {
		return fmt.Errorf("fuzz: recording repro: %w", err)
	}
	stats.Repros = append(stats.Repros, cc)
	return nil
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Rediscover searches for a composition where the given defect class
// both applies and is disproved by the checker, then shrinks it to a
// minimal witness. It is the §6.2 rediscovery experiment in library
// form: every paper bug class must come back as a minimized Disproved
// case. maxTries bounds the plan search.
func Rediscover(class DefectClass, seed uint64, workers, maxTries int) (*Result, error) {
	master := NewRNG(seed)
	tpl := rediscoverTemplate(class)
	for try := 0; try < maxTries; try++ {
		p := tpl
		p.Seed = master.Uint64()
		cs, err := Compose(p, nil)
		if err != nil {
			continue
		}
		n := cs.Sites[class]
		if n == 0 {
			continue
		}
		d := &Defect{Class: class, Site: master.Intn(n)}
		ics, err := Compose(p, d)
		if err != nil {
			continue
		}
		res, err := Evaluate(ics, workers)
		if err != nil || res.Outcome != OutcomeRediscovered {
			continue
		}
		_, shrunk, err := Shrink(p, d, workers, func(r *Result) bool {
			return r.Outcome == OutcomeRediscovered
		})
		if err != nil {
			return res, nil // keep the unshrunk witness
		}
		return shrunk, nil
	}
	return nil, fmt.Errorf("fuzz: %s: no disproved witness in %d tries", class, maxTries)
}

// rediscoverTemplate biases the plan search toward compositions where
// the class has sites: the right block mix makes the probability per
// seed high instead of astronomical.
func rediscoverTemplate(class DefectClass) Plan {
	p := Plan{Family: FamilyChain, Degree: 2}
	switch class {
	case DefectRoPEOffset:
		p.Blocks = []int{blockRoPE}
	case DefectAuxLossScale:
		p.Head = headRouter
	case DefectAccumScale:
		p.Head = headMSE
	case DefectPadSlice, DefectGatherOrder, DefectMissingRegister, DefectDoubleReduce:
		p.Blocks = []int{blockFFN}
	case DefectMissingCollective, DefectScatterNoReduce:
		p.Blocks = []int{blockFFN, blockUnary}
	default:
		p.Blocks = []int{blockFFN}
	}
	return p
}
