package fuzz

import (
	"errors"
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/strategy"
	"entangle/internal/sym"
)

// stateKind is the distribution layout the composer tracks for every
// G_s tensor while it builds the distributed implementation.
type stateKind int

const (
	// stShared: one G_d tensor holds the full value, used by all ranks.
	stShared stateKind = iota
	// stReplicated: R G_d tensors, each holding the full value.
	stReplicated
	// stSharded: R G_d tensors, equal shards along dim.
	stSharded
	// stPartial: R G_d tensors whose elementwise sum is the value.
	stPartial
)

func (k stateKind) String() string {
	switch k {
	case stShared:
		return "shared"
	case stReplicated:
		return "replicated"
	case stSharded:
		return "sharded"
	case stPartial:
		return "partial"
	}
	return fmt.Sprintf("state(%d)", int(k))
}

// dval is the distributed value backing one G_s tensor: its layout and
// the G_d tensors that realize it (one for shared, R otherwise).
// fullIDs memoizes the materialized full-per-rank form.
type dval struct {
	kind    stateKind
	dim     int
	ids     []graph.TensorID
	fullIDs []graph.TensorID
}

// outBinding records how one G_s output is realized in G_d, which the
// numeric oracle needs to reconstruct the sequential value from the
// per-rank outputs.
type outBinding struct {
	gs   graph.TensorID
	kind stateKind
	dim  int
	ids  []graph.TensorID
}

// Case is one composed fuzz case: a plan, the graphs it built, and the
// strategy environment (whose R_i and derivations feed the checker and
// the numeric oracle).
type Case struct {
	Plan   Plan
	Defect *Defect // nil for the correct composition
	Gs     *graph.Graph
	Gd     *graph.Graph
	Env    *strategy.Env
	// Sites counts defect sites per class encountered while composing;
	// the injector samples from the correct build's census.
	Sites map[DefectClass]int

	outs []outBinding
}

// ErrSiteUnused reports an injection whose (class, site) never fired:
// the site census of the correct build and the injected rebuild
// diverged, which the composer's determinism contract forbids.
var ErrSiteUnused = errors.New("fuzz: defect site not reached during composition")

// composer walks G_s in topological (construction) order and emits a
// distributed implementation, tracking each tensor's layout. All
// structural decisions come from the plan-seeded splitmix64 stream, so
// a (plan, defect) pair rebuilds byte-identically.
//
// Determinism contract: an injected defect may change what nodes are
// EMITTED, but never consumes extra decision draws, so the site
// indices counted by a correct build stay valid for injected rebuilds.
// The one sanctioned divergence is missing-register, which changes the
// downstream layout only after its own site fired.
type composer struct {
	rng     *RNG
	gs      *graph.Graph
	env     *strategy.Env
	b       *graph.Builder
	R       int
	defect  *Defect
	applied bool
	sites   map[DefectClass]int
	states  map[graph.TensorID]*dval
	// intLike marks G_s tensors holding integer token ids (consumed as
	// the index operand of an embedding); value-corrupting injections
	// that could push indices out of range are suppressed on them.
	intLike map[graph.TensorID]bool
}

// Compose builds plan p's distributed implementation, optionally with
// one injected defect. The returned case carries the graphs, the input
// relation, the ground truth, and the site census.
func Compose(p Plan, d *Defect) (*Case, error) {
	gs, err := BuildSequential(p)
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: G_s: %w", p, err)
	}
	env := strategy.NewEnv(gs, "gd", p.Degree)
	c := &composer{
		rng:     NewRNG(p.Seed),
		gs:      gs,
		env:     env,
		b:       env.B,
		R:       p.Degree,
		defect:  d,
		sites:   map[DefectClass]int{},
		states:  map[graph.TensorID]*dval{},
		intLike: map[graph.TensorID]bool{},
	}
	for _, n := range gs.Nodes {
		if (n.Op == expr.OpEmbedding || n.Op == expr.OpEmbeddingShard) && len(n.Inputs) > 1 {
			c.intLike[n.Inputs[1]] = true
		}
	}
	for _, id := range gs.Inputs {
		c.declareInput(gs.Tensor(id))
	}
	for _, n := range gs.Nodes {
		if err := c.emit(n); err != nil {
			return nil, fmt.Errorf("fuzz: %s: %w", p, err)
		}
	}
	outs := make([]outBinding, 0, len(gs.Outputs))
	for _, o := range gs.Outputs {
		v := c.states[o]
		c.b.Output(v.ids...)
		outs = append(outs, outBinding{gs: o, kind: v.kind, dim: v.dim,
			ids: append([]graph.TensorID(nil), v.ids...)})
	}
	gd, err := env.Build()
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s: G_d: %w", p, err)
	}
	if d != nil && !c.applied {
		return nil, fmt.Errorf("%w: %s in %s", ErrSiteUnused, d, p)
	}
	return &Case{Plan: p, Defect: d, Gs: gs, Gd: gd, Env: env, Sites: c.sites, outs: outs}, nil
}

// site counts one potential injection point of the given class and
// reports whether the active defect fires here.
func (c *composer) site(class DefectClass) bool {
	idx := c.sites[class]
	c.sites[class] = idx + 1
	if c.defect != nil && c.defect.Class == class && c.defect.Site == idx {
		c.applied = true
		return true
	}
	return false
}

func rname(r int, label string) string { return fmt.Sprintf("r%d/%s", r, label) }

// declareInput chooses a placement for one G_s input: shared (one
// copy), replicated (per-rank copies), or sharded along a divisible
// dim. Shard candidates are weighted up so compositions stay
// interesting. Shared placements are missing-register sites: the
// injected form registers an unused master copy and computes with
// unregistered per-rank working copies — the ZeRO-style registration
// bug where the gathered weights never made it into R_i.
func (c *composer) declareInput(t *graph.Tensor) {
	const (
		kShared = iota
		kReplicate
		kShard
	)
	type cand struct{ kind, dim int }
	cands := []cand{{kShared, 0}, {kShared, 0}, {kReplicate, 0}}
	for d := range t.Shape {
		if ext, ok := t.Shape[d].IsConst(); ok && ext%int64(c.R) == 0 && ext >= int64(c.R) {
			cands = append(cands, cand{kShard, d}, cand{kShard, d})
		}
	}
	pick := cands[c.rng.Intn(len(cands))]
	switch pick.kind {
	case kShared:
		if c.site(DefectMissingRegister) {
			c.env.Shared(t.Name) // registered master copy, never consumed
			ids := make([]graph.TensorID, c.R)
			for r := 0; r < c.R; r++ {
				name := rname(r, t.Name)
				ids[r] = c.b.Input(name, t.Shape.Clone())
				c.env.Derivs[name] = strategy.Derivation{GsInput: t.Name, Kind: strategy.DeriveReplicate}
			}
			c.env.MarkFull(ids...)
			c.states[t.ID] = &dval{kind: stReplicated, ids: ids}
			return
		}
		id := c.env.Shared(t.Name)
		c.states[t.ID] = &dval{kind: stShared, ids: []graph.TensorID{id}}
	case kReplicate:
		ids := c.env.Replicate(t.Name)
		c.states[t.ID] = &dval{kind: stReplicated, ids: ids}
	case kShard:
		ids := c.env.Shard(t.Name, pick.dim)
		c.states[t.ID] = &dval{kind: stSharded, dim: pick.dim, ids: ids}
	}
}

func (c *composer) allShared(n *graph.Node) bool {
	for _, in := range n.Inputs {
		if c.states[in].kind != stShared {
			return false
		}
	}
	return true
}

// emitShared re-emits n once on the shared copies; the output keeps
// the sequential tensor's name.
func (c *composer) emitShared(n *graph.Node) {
	ins := make([]graph.TensorID, len(n.Inputs))
	for i, in := range n.Inputs {
		ins[i] = c.states[in].ids[0]
	}
	out := c.b.Op(n.Op, n.Label, c.gs.Tensor(n.Outputs[0]).Name, n.Str, n.Ints, ins...)
	c.states[n.Outputs[0]] = &dval{kind: stShared, ids: []graph.TensorID{out}}
}

// perRank emits n once per rank with the given per-rank input columns
// and records the output layout.
func (c *composer) perRank(n *graph.Node, kind stateKind, dim int, ins ...[]graph.TensorID) {
	out := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		ri := make([]graph.TensorID, len(ins))
		for i := range ins {
			ri[i] = ins[i][r]
		}
		lbl := rname(r, n.Label)
		out[r] = c.b.Op(n.Op, lbl, lbl+".out", n.Str, n.Ints, ri...)
	}
	c.states[n.Outputs[0]] = &dval{kind: kind, dim: dim, ids: out}
}

// full materializes (and memoizes) per-rank complete copies of the
// value backing gsID, emitting the collectives this requires. The
// materialization paths host most collective-misuse defect sites.
func (c *composer) full(gsID graph.TensorID) []graph.TensorID {
	v := c.states[gsID]
	if v.fullIDs != nil {
		return v.fullIDs
	}
	name := c.gs.Tensor(gsID).Name
	switch v.kind {
	case stShared:
		ids := make([]graph.TensorID, c.R)
		for r := range ids {
			ids[r] = v.ids[0]
		}
		v.fullIDs = ids
	case stReplicated:
		if !c.intLike[gsID] && c.site(DefectDoubleReduce) {
			// Reduce a value that is already complete on every rank:
			// each copy becomes R times the sequential value.
			v.fullIDs = c.b.AllReduce(name+"/overreduce", v.ids...)
		} else {
			v.fullIDs = v.ids
		}
	case stSharded:
		v.fullIDs = c.gather(name, v)
	case stPartial:
		v.fullIDs = c.resolve(name, v)
	}
	c.env.MarkFull(v.fullIDs...)
	return v.fullIDs
}

// gather assembles full copies from shards, either with a plain
// all-gather (gather-order site: shards reassembled in rotated rank
// order) or with the padded gather-then-strip idiom (pad-slice site:
// the strip slices use the unpadded stride).
func (c *composer) gather(name string, v *dval) []graph.TensorID {
	dim := int64(v.dim)
	chunk, chunkOK := c.b.Graph().Tensor(v.ids[0]).Shape[v.dim].IsConst()
	if !chunkOK || !c.rng.OneIn(3) {
		ins := v.ids
		if c.site(DefectGatherOrder) {
			rot := make([]graph.TensorID, len(ins))
			copy(rot, ins[1:])
			rot[len(rot)-1] = ins[0]
			ins = rot
		}
		return c.b.AllGather(name+"/gather", dim, ins...)
	}
	// Padded gather (the SeedMoE idiom): pad every shard, gather, then
	// strip the padding back out rank-locally.
	const pad = 2
	padded := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		padded[r] = c.b.Pad(rname(r, name+"/pad"), v.ids[r], sym.Const(dim), sym.Const(0), sym.Const(pad))
	}
	gg := c.b.AllGather(name+"/gather", dim, padded...)
	stride := chunk + pad
	if c.site(DefectPadSlice) {
		stride = chunk // forgets the padding: keeps pad rows, drops data rows
	}
	out := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		pieces := make([]graph.TensorID, c.R)
		for i := 0; i < c.R; i++ {
			begin := int64(i) * stride
			pieces[i] = c.b.Slice(rname(r, fmt.Sprintf("%s/unpad%d", name, i)), gg[r],
				sym.Const(dim), sym.Const(begin), sym.Const(begin+chunk))
		}
		out[r] = c.b.Concat(rname(r, name+"/rebuild"), sym.Const(dim), pieces...)
	}
	return out
}

// resolve turns partial sums into full copies: either a direct
// all-reduce (missing-collective site: the reduce is skipped and ranks
// consume their own partial) or a reduce-scatter along dim 0 followed
// by a gather (scatter-no-reduce site: each rank slices its own
// partial locally instead of reduce-scattering).
func (c *composer) resolve(name string, v *dval) []graph.TensorID {
	sh := c.b.Graph().Tensor(v.ids[0]).Shape
	var ext int64
	extOK := false
	if len(sh) > 0 {
		ext, extOK = sh[0].IsConst()
	}
	canScatter := extOK && ext%int64(c.R) == 0 && ext >= int64(c.R)
	if !canScatter || !c.rng.OneIn(3) {
		if c.site(DefectMissingCollective) {
			return v.ids
		}
		return c.b.AllReduce(name+"/allreduce", v.ids...)
	}
	chunk := ext / int64(c.R)
	var shards []graph.TensorID
	if c.site(DefectScatterNoReduce) {
		shards = make([]graph.TensorID, c.R)
		for r := 0; r < c.R; r++ {
			begin := int64(r) * chunk
			shards[r] = c.b.Slice(rname(r, name+"/localslice"), v.ids[r],
				sym.Const(0), sym.Const(begin), sym.Const(begin+chunk))
		}
	} else {
		shards = c.b.ReduceScatter(name+"/reducescatter", 0, v.ids...)
	}
	sv := &dval{kind: stSharded, dim: 0, ids: shards}
	return c.gather(name+"/rs", sv)
}

// emit dispatches one G_s operator to its strategy rule.
func (c *composer) emit(n *graph.Node) error {
	if len(n.Outputs) != 1 {
		return fmt.Errorf("composer: multi-output G_s operator %q unsupported", n.Label)
	}
	if c.allShared(n) {
		c.emitShared(n)
		return nil
	}
	switch n.Op {
	case expr.OpMatMul:
		c.emitMatMul(n)
	case expr.OpAdd, expr.OpSub:
		c.emitElementwise(n, true)
	case expr.OpMul, expr.OpDiv:
		c.emitElementwise(n, false)
	case expr.OpScale:
		v := c.states[n.Inputs[0]]
		c.perRank(n, v.kind, v.dim, v.ids) // scale is linear: preserves any layout
	case expr.OpUnary, expr.OpIdentity:
		v := c.states[n.Inputs[0]]
		if v.kind == stSharded {
			c.perRank(n, stSharded, v.dim, v.ids)
		} else {
			c.perRank(n, stReplicated, 0, c.full(n.Inputs[0]))
		}
	case expr.OpSoftmax:
		c.emitSoftmax(n)
	case expr.OpReduceSum:
		c.emitReduceSum(n)
	case expr.OpRMSNorm, expr.OpLayerNorm:
		c.emitNorm(n)
	case expr.OpRoPE:
		c.emitRoPE(n)
	case expr.OpAttention:
		c.emitAttention(n)
	case expr.OpEmbedding:
		c.emitEmbedding(n)
	case expr.OpRouter:
		c.emitRouter(n)
	case expr.OpAuxLoss:
		c.emitAuxLoss(n)
	case expr.OpMSELoss:
		c.emitMSELoss(n)
	case expr.OpSquaredError:
		c.emitSqErr(n)
	default:
		c.emitFallback(n)
	}
	return nil
}

// emitFallback is the universal rule: materialize every input full and
// replicate the computation. Legal for any operator.
func (c *composer) emitFallback(n *graph.Node) {
	ins := make([][]graph.TensorID, len(n.Inputs))
	for i, in := range n.Inputs {
		ins[i] = c.full(in)
	}
	c.perRank(n, stReplicated, 0, ins...)
}

func (c *composer) emitMatMul(n *graph.Node) {
	a, w := n.Inputs[0], n.Inputs[1]
	va, vw := c.states[a], c.states[w]
	rank2 := len(c.gs.Tensor(a).Shape) == 2 && len(c.gs.Tensor(w).Shape) == 2
	const (
		ruleLocal    = iota // full × full per rank (ZeRO gather when w is sharded)
		ruleRowSplit        // batch-sharded activation × full weight
		ruleColumn          // full activation × column-sharded weight (TP column)
		ruleRow             // contraction-sharded both sides → partial (TP row)
	)
	rules := []int{ruleLocal}
	if rank2 && va.kind == stSharded && va.dim == 0 {
		rules = append(rules, ruleRowSplit, ruleRowSplit)
	}
	if rank2 && vw.kind == stSharded && vw.dim == 1 {
		rules = append(rules, ruleColumn, ruleColumn)
	}
	if rank2 && va.kind == stSharded && va.dim == 1 && vw.kind == stSharded && vw.dim == 0 {
		rules = append(rules, ruleRow, ruleRow, ruleRow)
	}
	switch rules[c.rng.Intn(len(rules))] {
	case ruleLocal:
		c.perRank(n, stReplicated, 0, c.full(a), c.full(w))
	case ruleRowSplit:
		c.perRank(n, stSharded, 0, va.ids, c.full(w))
	case ruleColumn:
		c.perRank(n, stSharded, 1, c.full(a), vw.ids)
	case ruleRow:
		c.perRank(n, stPartial, 0, va.ids, vw.ids)
	}
}

// emitElementwise handles binary pointwise operators. linear permits
// the partial+partial rule (sums of partials are partials of sums).
func (c *composer) emitElementwise(n *graph.Node, linear bool) {
	a, b := n.Inputs[0], n.Inputs[1]
	va, vb := c.states[a], c.states[b]
	switch {
	case va.kind == stSharded && vb.kind == stSharded && va.dim == vb.dim:
		c.perRank(n, stSharded, va.dim, va.ids, vb.ids)
	case linear && va.kind == stPartial && vb.kind == stPartial:
		c.perRank(n, stPartial, 0, va.ids, vb.ids)
	default:
		c.perRank(n, stReplicated, 0, c.full(a), c.full(b))
	}
}

func (c *composer) emitSoftmax(n *graph.Node) {
	dim := intConst(n.Ints[0])
	v := c.states[n.Inputs[0]]
	if v.kind == stSharded && int64(v.dim) != dim {
		c.perRank(n, stSharded, v.dim, v.ids)
		return
	}
	c.perRank(n, stReplicated, 0, c.full(n.Inputs[0]))
}

func (c *composer) emitReduceSum(n *graph.Node) {
	dim := intConst(n.Ints[0])
	v := c.states[n.Inputs[0]]
	switch {
	case v.kind == stSharded && int64(v.dim) == dim:
		// Reducing over the sharded dim: per-rank sums are partials.
		c.perRank(n, stPartial, 0, v.ids)
	case v.kind == stSharded:
		c.perRank(n, stSharded, v.dim, v.ids)
	default:
		c.perRank(n, stReplicated, 0, c.full(n.Inputs[0]))
	}
}

// emitNorm handles rmsnorm/layernorm (normalizing over the last dim):
// a shard along any earlier dim stays sharded, anything else falls
// back to replication. Weight and bias are materialized full.
func (c *composer) emitNorm(n *graph.Node) {
	x := n.Inputs[0]
	vx := c.states[x]
	last := len(c.gs.Tensor(x).Shape) - 1
	params := make([][]graph.TensorID, 0, 2)
	for _, p := range n.Inputs[1:] {
		params = append(params, c.full(p))
	}
	if vx.kind == stSharded && vx.dim != last {
		c.perRank(n, stSharded, vx.dim, append([][]graph.TensorID{vx.ids}, params...)...)
		return
	}
	c.perRank(n, stReplicated, 0, append([][]graph.TensorID{c.full(x)}, params...)...)
}

// emitRoPE: a sequence-sharded activation keeps its shard and slices
// the matching rows out of the (full) rotary tables — the rope-offset
// site omits the rank offset so every rank rotates with rank 0's rows.
func (c *composer) emitRoPE(n *graph.Node) {
	x, cos, sin := n.Inputs[0], n.Inputs[1], n.Inputs[2]
	vx := c.states[x]
	chunk, chunkOK := int64(0), false
	if vx.kind == stSharded && vx.dim == 0 {
		chunk, chunkOK = c.b.Graph().Tensor(vx.ids[0]).Shape[0].IsConst()
	}
	if !chunkOK {
		c.emitFallback(n)
		return
	}
	cosF, sinF := c.full(cos), c.full(sin)
	drop := c.site(DefectRoPEOffset)
	out := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		begin := int64(r) * chunk
		if drop {
			begin = 0
		}
		lbl := rname(r, n.Label)
		cosR := c.b.Slice(lbl+"/cos", cosF[r], sym.Const(0), sym.Const(begin), sym.Const(begin+chunk))
		sinR := c.b.Slice(lbl+"/sin", sinF[r], sym.Const(0), sym.Const(begin), sym.Const(begin+chunk))
		out[r] = c.b.RoPE(lbl, vx.ids[r], cosR, sinR)
	}
	c.states[n.Outputs[0]] = &dval{kind: stSharded, dim: 0, ids: out}
}

func (c *composer) emitAttention(n *graph.Node) {
	q, k, v := n.Inputs[0], n.Inputs[1], n.Inputs[2]
	vq, vk, vv := c.states[q], c.states[k], c.states[v]
	heads := intConst(n.Ints[0])
	if vq.kind == stSharded && vq.dim == 1 && vk.kind == stSharded && vk.dim == 1 &&
		vv.kind == stSharded && vv.dim == 1 && heads%int64(c.R) == 0 {
		// Head-parallel: each rank attends over its own head group.
		out := make([]graph.TensorID, c.R)
		for r := 0; r < c.R; r++ {
			out[r] = c.b.Attention(rname(r, n.Label), vq.ids[r], vk.ids[r], vv.ids[r], heads/int64(c.R))
		}
		c.states[n.Outputs[0]] = &dval{kind: stSharded, dim: 1, ids: out}
		return
	}
	if vq.kind == stSharded && vq.dim == 0 {
		// Query-sequence split: queries stay sharded, keys/values full.
		c.perRank(n, stSharded, 0, vq.ids, c.full(k), c.full(v))
		return
	}
	c.emitFallback(n)
}

func (c *composer) emitEmbedding(n *graph.Node) {
	table, ids := n.Inputs[0], n.Inputs[1]
	vt, vi := c.states[table], c.states[ids]
	const (
		ruleLocal  = iota // full table × full ids per rank
		ruleSeq           // sequence-sharded ids
		ruleHidden        // hidden-sharded table
		ruleVocab         // vocab-sharded table → partial lookups
	)
	rules := []int{ruleLocal}
	if vi.kind == stSharded && vi.dim == 0 {
		rules = append(rules, ruleSeq, ruleSeq)
	}
	if vt.kind == stSharded && vt.dim == 1 {
		rules = append(rules, ruleHidden, ruleHidden)
	}
	chunkV, vOK := int64(0), false
	if vt.kind == stSharded && vt.dim == 0 {
		chunkV, vOK = c.b.Graph().Tensor(vt.ids[0]).Shape[0].IsConst()
		if vOK {
			rules = append(rules, ruleVocab, ruleVocab)
		}
	}
	outLast := len(c.gs.Tensor(n.Outputs[0]).Shape) - 1
	switch rules[c.rng.Intn(len(rules))] {
	case ruleLocal:
		c.perRank(n, stReplicated, 0, c.full(table), c.full(ids))
	case ruleSeq:
		c.perRank(n, stSharded, 0, c.full(table), vi.ids)
	case ruleHidden:
		c.perRank(n, stSharded, outLast, vt.ids, c.full(ids))
	case ruleVocab:
		idsF := c.full(ids)
		out := make([]graph.TensorID, c.R)
		for r := 0; r < c.R; r++ {
			out[r] = c.b.EmbeddingShard(rname(r, n.Label), vt.ids[r], idsF[r], sym.Const(int64(r)*chunkV))
		}
		c.states[n.Outputs[0]] = &dval{kind: stPartial, ids: out}
	}
}

func (c *composer) emitRouter(n *graph.Node) {
	x, w := n.Inputs[0], n.Inputs[1]
	vx := c.states[x]
	if vx.kind == stSharded && vx.dim == 0 {
		c.perRank(n, stSharded, 0, vx.ids, c.full(w))
		return
	}
	c.emitFallback(n)
}

// emitAuxLoss: a token-sharded probability tensor yields per-rank aux
// losses scaled by 1/R whose sum is the sequential loss — the
// auxloss-scale site drops the scale (paper bug 2).
func (c *composer) emitAuxLoss(n *graph.Node) {
	v := c.states[n.Inputs[0]]
	if v.kind != stSharded || v.dim != 0 {
		c.emitFallback(n)
		return
	}
	drop := c.site(DefectAuxLossScale)
	out := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		lbl := rname(r, n.Label)
		aux := c.b.AuxLoss(lbl, v.ids[r])
		if !drop {
			aux = c.b.Scale(lbl+"/scale", aux, 1, int64(c.R))
		}
		out[r] = aux
	}
	c.states[n.Outputs[0]] = &dval{kind: stPartial, ids: out}
}

// emitMSELoss: batch-sharded pred/target yield per-rank MSE scaled by
// 1/R — the accum-scale site drops the scale (paper bug 6, unscaled
// gradient accumulation).
func (c *composer) emitMSELoss(n *graph.Node) {
	p, t := n.Inputs[0], n.Inputs[1]
	vp, vt := c.states[p], c.states[t]
	if vp.kind != stSharded || vp.dim != 0 || vt.kind != stSharded || vt.dim != 0 {
		c.emitFallback(n)
		return
	}
	drop := c.site(DefectAccumScale)
	out := make([]graph.TensorID, c.R)
	for r := 0; r < c.R; r++ {
		lbl := rname(r, n.Label)
		m := c.b.MSELoss(lbl, vp.ids[r], vt.ids[r])
		if !drop {
			m = c.b.Scale(lbl+"/scale", m, 1, int64(c.R))
		}
		out[r] = m
	}
	c.states[n.Outputs[0]] = &dval{kind: stPartial, ids: out}
}

// emitSqErr: batch-sharded squared error sums across ranks unscaled.
func (c *composer) emitSqErr(n *graph.Node) {
	p, t := n.Inputs[0], n.Inputs[1]
	vp, vt := c.states[p], c.states[t]
	if vp.kind == stSharded && vp.dim == 0 && vt.kind == stSharded && vt.dim == 0 {
		c.perRank(n, stPartial, 0, vp.ids, vt.ids)
		return
	}
	c.emitFallback(n)
}

func intConst(e sym.Expr) int64 {
	v, _ := e.IsConst()
	return v
}
