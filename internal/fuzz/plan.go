package fuzz

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/models"
	"entangle/internal/shape"
)

// Family selects the source of the sequential graph a case
// parallelizes.
type Family string

const (
	// FamilyChain generates a random transformer-ish chain of blocks
	// (the richest family: every block kind exposes different
	// strategy rules and defect sites).
	FamilyChain Family = "chain"
	// FamilyGPT parallelizes the internal/models GPT sequential graph.
	FamilyGPT Family = "gpt"
	// FamilySeedMoE parallelizes the SeedMoE sequential graph.
	FamilySeedMoE Family = "seedmoe"
	// FamilyRegression parallelizes the regression sequential graph.
	FamilyRegression Family = "regression"
)

// Families is the canonical family order (flag parsing, bench tables).
var Families = []Family{FamilyChain, FamilyGPT, FamilySeedMoE, FamilyRegression}

// ParseFamilies parses a comma-separated -models flag value.
func ParseFamilies(names []string) ([]Family, error) {
	if len(names) == 0 {
		return Families, nil
	}
	var out []Family
	for _, n := range names {
		found := false
		for _, f := range Families {
			if string(f) == n {
				out = append(out, f)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("fuzz: unknown model family %q (have chain, gpt, seedmoe, regression)", n)
		}
	}
	return out, nil
}

// Chain-family block kinds. Each preserves the [S, H] activation shape
// so blocks compose freely; jointly they exercise every strategy rule
// the composer knows.
const (
	blockUnary     = iota // pointwise activation
	blockFFN              // H→F→H linear pair with a mid activation
	blockRMSNorm          // rmsnorm with a shared weight
	blockResidual         // x + silu(x)
	blockLayerNorm        // layernorm with shared weight and bias
	blockSquare           // square H×H linear
	blockRoPE             // rotary embedding against precomputed tables
	blockAttention        // q/k/v/o projections around attention
	blockSoftmax          // softmax over the hidden dim
	blockScale            // rational rescale
	numBlockKinds
)

// Chain-family heads: what the chain feeds at the end.
const (
	headNone   = iota // output the final activation
	headMSE           // mean-squared-error loss against a target input
	headRouter        // MoE router + auxiliary load-balancing loss
	headSqErr         // summed squared error against a target input
	numHeadKinds
)

// Chain-family dimensions: small enough that the numeric oracle is
// instant, divisible by every supported degree.
const (
	chainS     = 8
	chainH     = 16
	chainF     = 32
	chainHeads = 4
	chainExp   = 4 // router experts
)

// Plan is the complete DNA of one fuzz case: rebuilding from a plan is
// deterministic down to the byte, which is what the shrinker mutates
// and the corpus replays.
type Plan struct {
	// Seed feeds the composer's decision stream (input placement,
	// strategy choice per operator, gather variants).
	Seed uint64 `json:"seed"`
	// Family selects the sequential graph source.
	Family Family `json:"family"`
	// Degree is the parallelism degree R.
	Degree int `json:"degree"`
	// Blocks lists chain-family block kinds (empty for model families).
	Blocks []int `json:"blocks,omitempty"`
	// Head is the chain-family head kind.
	Head int `json:"head,omitempty"`
}

func (p Plan) String() string {
	if p.Family == FamilyChain {
		return fmt.Sprintf("%s/R%d/blocks%v/head%d/seed%d", p.Family, p.Degree, p.Blocks, p.Head, p.Seed)
	}
	return fmt.Sprintf("%s/R%d/seed%d", p.Family, p.Degree, p.Seed)
}

// RandomPlan draws a plan from the master stream. maxDegree bounds the
// parallelism degree; degrees are powers of two so the fixed chain
// dimensions always divide.
func RandomPlan(rng *RNG, families []Family, maxDegree int) Plan {
	p := Plan{
		Seed:   rng.Uint64(),
		Family: families[rng.Intn(len(families))],
		Degree: 2,
	}
	if maxDegree >= 4 && rng.Bool() {
		p.Degree = 4
	}
	if p.Family == FamilyChain {
		depth := 1 + rng.Intn(4)
		for i := 0; i < depth; i++ {
			p.Blocks = append(p.Blocks, rng.Intn(numBlockKinds))
		}
		p.Head = rng.Intn(numHeadKinds)
	}
	return p
}

// BuildSequential constructs the plan's sequential graph G_s.
func BuildSequential(p Plan) (*graph.Graph, error) {
	switch p.Family {
	case FamilyChain:
		return buildChain(p)
	case FamilyGPT:
		b, err := models.GPT(models.Options{TP: 2})
		if err != nil {
			return nil, err
		}
		return b.Gs, nil
	case FamilySeedMoE:
		b, err := models.SeedMoE(models.Options{TP: 2})
		if err != nil {
			return nil, err
		}
		return b.Gs, nil
	case FamilyRegression:
		b, err := models.Regression(models.Options{TP: 2})
		if err != nil {
			return nil, err
		}
		return b.Gs, nil
	}
	return nil, fmt.Errorf("fuzz: unknown family %q", p.Family)
}

// buildChain builds the chain-family G_s from the plan. Block
// parameters (which activation, scale ratio) come from a dedicated
// stream so they never perturb the composer's decision stream.
func buildChain(p Plan) (*graph.Graph, error) {
	rng := NewRNG(p.Seed ^ 0xc0ffee_d00d)
	b := graph.NewBuilder("fuzz/chain", nil)
	x := b.Input("x", shape.Of(chainS, chainH))
	cur := x
	acts := []string{"gelu", "silu", "relu", "tanh"}
	for i, kind := range p.Blocks {
		pf := func(s string) string { return fmt.Sprintf("L%d/%s", i, s) }
		switch kind {
		case blockUnary:
			cur = b.Unary(pf("act"), acts[rng.Intn(len(acts))], cur)
		case blockFFN:
			w1 := b.Input(pf("w1"), shape.Of(chainH, chainF))
			w2 := b.Input(pf("w2"), shape.Of(chainF, chainH))
			h := b.MatMul(pf("fc1"), cur, w1)
			a := b.Unary(pf("mid"), acts[rng.Intn(len(acts))], h)
			cur = b.MatMul(pf("fc2"), a, w2)
		case blockRMSNorm:
			w := b.Input(pf("rms_w"), shape.Of(chainH))
			cur = b.RMSNorm(pf("rms"), cur, w)
		case blockResidual:
			u := b.Unary(pf("res_act"), "silu", cur)
			cur = b.Add(pf("res"), cur, u)
		case blockLayerNorm:
			w := b.Input(pf("ln_w"), shape.Of(chainH))
			bias := b.Input(pf("ln_b"), shape.Of(chainH))
			cur = b.LayerNorm(pf("ln"), cur, w, bias)
		case blockSquare:
			w := b.Input(pf("sq_w"), shape.Of(chainH, chainH))
			cur = b.MatMul(pf("sq"), cur, w)
		case blockRoPE:
			cos := b.Input(pf("rope_cos"), shape.Of(chainS, chainH))
			sin := b.Input(pf("rope_sin"), shape.Of(chainS, chainH))
			cur = b.RoPE(pf("rope"), cur, cos, sin)
		case blockAttention:
			wq := b.Input(pf("q_w"), shape.Of(chainH, chainH))
			wk := b.Input(pf("k_w"), shape.Of(chainH, chainH))
			wv := b.Input(pf("v_w"), shape.Of(chainH, chainH))
			wo := b.Input(pf("o_w"), shape.Of(chainH, chainH))
			q := b.MatMul(pf("q"), cur, wq)
			k := b.MatMul(pf("k"), cur, wk)
			v := b.MatMul(pf("v"), cur, wv)
			attn := b.Attention(pf("attn"), q, k, v, chainHeads)
			cur = b.MatMul(pf("o"), attn, wo)
		case blockSoftmax:
			cur = b.Softmax(pf("softmax"), cur, 1)
		case blockScale:
			cur = b.Scale(pf("scale"), cur, 3, 2)
		default:
			return nil, fmt.Errorf("fuzz: unknown block kind %d", kind)
		}
	}
	switch p.Head {
	case headNone:
		b.Output(cur)
	case headMSE:
		target := b.Input("target", shape.Of(chainS, chainH))
		b.Output(b.MSELoss("head/mse", cur, target))
	case headRouter:
		w := b.Input("router_w", shape.Of(chainH, chainExp))
		probs := b.Router("head/router", cur, w)
		b.Output(b.AuxLoss("head/auxloss", probs))
	case headSqErr:
		target := b.Input("target", shape.Of(chainS, chainH))
		b.Output(b.SquaredError("head/sqerr", cur, target))
	default:
		return nil, fmt.Errorf("fuzz: unknown head kind %d", p.Head)
	}
	return b.Build()
}
