package fuzz

import "errors"

// Shrink greedily minimizes a plan while keep still holds on the
// rebuilt and re-evaluated case: chain blocks are dropped one at a
// time, the head is simplified away, and the degree is lowered. Moves
// that break composition (an injected site that no longer exists, a
// strategy that no longer applies) are simply skipped. Returns the
// smallest surviving plan and its evaluation.
//
// keep must hold for the input plan; Shrink evaluates it first and
// errors otherwise, so corpus entries always record a verified repro.
func Shrink(p Plan, d *Defect, workers int, keep func(*Result) bool) (Plan, *Result, error) {
	best, bestRes, err := evalPlan(p, d, workers)
	if err != nil {
		return p, nil, err
	}
	if !keep(bestRes) {
		return p, bestRes, errors.New("fuzz: shrink: property does not hold on the initial plan")
	}
	for improved := true; improved; {
		improved = false
		for _, cand := range shrinkMoves(best) {
			cp, res, err := evalPlan(cand, d, workers)
			if err != nil {
				continue // move killed the composition; try the next one
			}
			if keep(res) {
				best, bestRes = cp, res
				improved = true
				break // restart from the smaller plan
			}
		}
	}
	return best, bestRes, nil
}

func evalPlan(p Plan, d *Defect, workers int) (Plan, *Result, error) {
	cs, err := Compose(p, d)
	if err != nil {
		return p, nil, err
	}
	res, err := Evaluate(cs, workers)
	if err != nil {
		return p, nil, err
	}
	return p, res, nil
}

// shrinkMoves enumerates candidate simplifications, smallest-first.
func shrinkMoves(p Plan) []Plan {
	var out []Plan
	if p.Family == FamilyChain {
		for i := range p.Blocks {
			q := p
			q.Blocks = append(append([]int{}, p.Blocks[:i]...), p.Blocks[i+1:]...)
			out = append(out, q)
		}
		if p.Head != headNone {
			q := p
			q.Head = headNone
			out = append(out, q)
		}
	}
	if p.Degree > 2 {
		q := p
		q.Degree = 2
		out = append(out, q)
	}
	return out
}
