package sym

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a linear integer expression from its textual form:
// terms separated by + or -, each term either an integer literal, a
// symbol, or coeff*symbol. Examples: "4096", "S", "2*S+1", "-H+3".
// It accepts exactly the language produced by Expr.String.
func Parse(s string) (Expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Expr{}, fmt.Errorf("sym: empty expression")
	}
	out := Expr{}
	i := 0
	sign := int64(1)
	pendingOp := false // an operator was read without a following term
	nterms := 0
	for i < len(s) {
		switch s[i] {
		case '+':
			if pendingOp {
				return Expr{}, fmt.Errorf("sym: doubled operator in %q", s)
			}
			sign = 1
			pendingOp = true
			i++
			continue
		case '-':
			if pendingOp {
				return Expr{}, fmt.Errorf("sym: doubled operator in %q", s)
			}
			sign = -1
			pendingOp = true
			i++
			continue
		case ' ':
			i++
			continue
		}
		if nterms > 0 && !pendingOp {
			return Expr{}, fmt.Errorf("sym: missing operator in %q", s)
		}
		term, n, err := parseTerm(s[i:])
		if err != nil {
			return Expr{}, fmt.Errorf("sym: %v in %q", err, s)
		}
		out = out.Add(term.MulConst(sign))
		i += n
		sign = 1
		pendingOp = false
		nterms++
	}
	if pendingOp || nterms == 0 {
		return Expr{}, fmt.Errorf("sym: incomplete expression %q", s)
	}
	return out, nil
}

// MustParse is Parse that panics on error; for literals in tests and
// builders.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

func parseTerm(s string) (Expr, int, error) {
	i := 0
	// optional integer
	j := i
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	var coeff int64 = 1
	haveNum := j > i
	if haveNum {
		v, err := strconv.ParseInt(s[i:j], 10, 64)
		if err != nil {
			return Expr{}, 0, err
		}
		coeff = v
		i = j
	}
	// optional '*symbol' or bare symbol
	sawStar := false
	if i < len(s) && s[i] == '*' {
		if !haveNum {
			return Expr{}, 0, fmt.Errorf("dangling '*'")
		}
		sawStar = true
		i++
	}
	if sawStar && (i >= len(s) || !isSymStart(rune(s[i]))) {
		return Expr{}, 0, fmt.Errorf("'*' without symbol")
	}
	if i < len(s) && isSymStart(rune(s[i])) {
		k := i
		for k < len(s) && isSymRune(rune(s[k])) {
			k++
		}
		name := Symbol(s[i:k])
		return Var(name).MulConst(coeff), k, nil
	}
	if !haveNum {
		return Expr{}, 0, fmt.Errorf("expected term at %q", s)
	}
	return Const(coeff), i, nil
}

func isSymStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isSymRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
