// Package sym implements the symbolic-scalar arithmetic that ENTANGLE
// uses in place of SMT-LIB (§5 of the paper, "Handling Symbolic
// Scalars"). Scalars appearing in computation graphs — slice offsets,
// concat dimensions, shard sizes — are linear integer expressions over
// named symbols. Equality is decided by normalization; inequality is
// decided against a set of user-provided assumptions using
// Fourier–Motzkin elimination, which is complete for the linear
// workloads the paper reports (only "simple operations (e.g., addition)
// are used on symbolic scalars").
package sym

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Symbol names a symbolic integer variable (e.g. a sequence length "S").
type Symbol string

// Expr is a linear integer expression: Const + Σ coeff[s]·s.
// The zero value is the constant 0. Expr values are immutable; all
// operations return fresh expressions.
type Expr struct {
	konst  int64
	coeffs map[Symbol]int64 // never contains zero-valued entries
}

// Const returns the expression for a constant integer.
func Const(v int64) Expr { return Expr{konst: v} }

// Var returns the expression for a single symbol with coefficient 1.
func Var(s Symbol) Expr {
	return Expr{coeffs: map[Symbol]int64{s: 1}}
}

// Zero reports whether e is the constant 0.
func (e Expr) Zero() bool { return e.konst == 0 && len(e.coeffs) == 0 }

// IsConst reports whether e contains no symbols, returning its value.
func (e Expr) IsConst() (int64, bool) {
	if len(e.coeffs) == 0 {
		return e.konst, true
	}
	return 0, false
}

// ConstPart returns the constant term of e.
func (e Expr) ConstPart() int64 { return e.konst }

// Coeff returns the coefficient of symbol s in e (0 if absent).
func (e Expr) Coeff(s Symbol) int64 { return e.coeffs[s] }

// Symbols returns the symbols appearing in e, sorted.
func (e Expr) Symbols() []Symbol {
	out := make([]Symbol, 0, len(e.coeffs))
	for s := range e.coeffs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e Expr) clone() Expr {
	c := Expr{konst: e.konst}
	if len(e.coeffs) > 0 {
		c.coeffs = make(map[Symbol]int64, len(e.coeffs))
		for s, v := range e.coeffs {
			c.coeffs[s] = v
		}
	}
	return c
}

func (e *Expr) put(s Symbol, v int64) {
	if v == 0 {
		delete(e.coeffs, s)
		return
	}
	if e.coeffs == nil {
		e.coeffs = make(map[Symbol]int64)
	}
	e.coeffs[s] = v
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	r := e.clone()
	r.konst += o.konst
	for s, v := range o.coeffs {
		r.put(s, r.coeffs[s]+v)
	}
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr { return e.MulConst(-1) }

// MulConst returns k·e.
func (e Expr) MulConst(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	r := Expr{konst: e.konst * k}
	for s, v := range e.coeffs {
		r.put(s, v*k)
	}
	return r
}

// AddConst returns e + k.
func (e Expr) AddConst(k int64) Expr {
	r := e.clone()
	r.konst += k
	return r
}

// Mul returns e·o if at least one side is constant; ok is false when
// both sides are symbolic (the product would be non-linear).
func (e Expr) Mul(o Expr) (Expr, bool) {
	if k, isC := o.IsConst(); isC {
		return e.MulConst(k), true
	}
	if k, isC := e.IsConst(); isC {
		return o.MulConst(k), true
	}
	return Expr{}, false
}

// DivConst returns e / k when every coefficient and the constant are
// exactly divisible by k; ok is false otherwise.
func (e Expr) DivConst(k int64) (Expr, bool) {
	if k == 0 {
		return Expr{}, false
	}
	if e.konst%k != 0 {
		return Expr{}, false
	}
	r := Expr{konst: e.konst / k}
	for s, v := range e.coeffs {
		if v%k != 0 {
			return Expr{}, false
		}
		r.put(s, v/k)
	}
	return r, true
}

// Equal reports structural (normalized) equality of two expressions.
func (e Expr) Equal(o Expr) bool {
	if e.konst != o.konst || len(e.coeffs) != len(o.coeffs) {
		return false
	}
	for s, v := range e.coeffs {
		if o.coeffs[s] != v {
			return false
		}
	}
	return true
}

// Key returns a canonical string for use in hash-cons maps. Two
// expressions have the same key iff they are Equal.
func (e Expr) Key() string {
	return string(e.AppendKey(nil))
}

// AppendKey appends Key's bytes to buf and returns the extended slice —
// the allocation-free form for callers that intern or hash keys through
// a reused buffer (the e-graph hot path).
func (e Expr) AppendKey(buf []byte) []byte {
	buf = strconv.AppendInt(buf, e.konst, 10)
	if len(e.coeffs) == 0 {
		return buf
	}
	for _, s := range e.Symbols() {
		// Matches the historical fmt "%+d*%s" rendering.
		if c := e.coeffs[s]; c >= 0 {
			buf = append(buf, '+')
			buf = strconv.AppendInt(buf, c, 10)
			buf = append(buf, '*')
		} else {
			buf = strconv.AppendInt(buf, c, 10)
			buf = append(buf, '*')
		}
		buf = append(buf, s...)
	}
	return buf
}

// String renders e human-readably, e.g. "S/2" style forms are rendered
// as their linear normal form "1*S_half".
func (e Expr) String() string {
	if len(e.coeffs) == 0 {
		return fmt.Sprintf("%d", e.konst)
	}
	var parts []string
	for _, s := range e.Symbols() {
		c := e.coeffs[s]
		switch c {
		case 1:
			parts = append(parts, string(s))
		case -1:
			parts = append(parts, "-"+string(s))
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, s))
		}
	}
	out := strings.Join(parts, "+")
	out = strings.ReplaceAll(out, "+-", "-")
	if e.konst != 0 {
		out = fmt.Sprintf("%s%+d", out, e.konst)
	}
	return out
}

// Eval substitutes concrete values for symbols. It returns an error if
// a symbol has no binding.
func (e Expr) Eval(env map[Symbol]int64) (int64, error) {
	v := e.konst
	for s, c := range e.coeffs {
		b, ok := env[s]
		if !ok {
			return 0, fmt.Errorf("sym: unbound symbol %q", s)
		}
		v += c * b
	}
	return v, nil
}

// Subst replaces symbol s with expression r throughout e.
func (e Expr) Subst(s Symbol, r Expr) Expr {
	c, ok := e.coeffs[s]
	if !ok {
		return e
	}
	out := e.clone()
	out.put(s, 0)
	return out.Add(r.MulConst(c))
}
