package sym

import (
	"testing"
	"testing/quick"
)

func TestConstArithmetic(t *testing.T) {
	a := Const(3)
	b := Const(4)
	if v, ok := a.Add(b).IsConst(); !ok || v != 7 {
		t.Fatalf("3+4 = %v,%v", v, ok)
	}
	if v, ok := a.Sub(b).IsConst(); !ok || v != -1 {
		t.Fatalf("3-4 = %v,%v", v, ok)
	}
	if v, ok := a.MulConst(5).IsConst(); !ok || v != 15 {
		t.Fatalf("3*5 = %v,%v", v, ok)
	}
}

func TestVarNormalization(t *testing.T) {
	x := Var("x")
	y := Var("y")
	e := x.Add(y).Sub(x) // should be exactly y
	if !e.Equal(y) {
		t.Fatalf("x+y-x = %s, want y", e)
	}
	if e.Key() != y.Key() {
		t.Fatalf("keys differ: %q vs %q", e.Key(), y.Key())
	}
	zero := x.Sub(x)
	if !zero.Zero() {
		t.Fatalf("x-x not zero: %s", zero)
	}
}

func TestDivConst(t *testing.T) {
	x := Var("x")
	e := x.MulConst(4).AddConst(8)
	h, ok := e.DivConst(4)
	if !ok {
		t.Fatal("4x+8 should divide by 4")
	}
	want := x.AddConst(2)
	if !h.Equal(want) {
		t.Fatalf("got %s want %s", h, want)
	}
	if _, ok := e.DivConst(3); ok {
		t.Fatal("4x+8 must not divide by 3")
	}
	if _, ok := e.DivConst(0); ok {
		t.Fatal("division by zero must fail")
	}
}

func TestMulLinearOnly(t *testing.T) {
	x, y := Var("x"), Var("y")
	if _, ok := x.Mul(y); ok {
		t.Fatal("x*y is non-linear and must be rejected")
	}
	p, ok := x.Mul(Const(3))
	if !ok || !p.Equal(x.MulConst(3)) {
		t.Fatalf("x*3 got %s ok=%v", p, ok)
	}
	p, ok = Const(3).Mul(x)
	if !ok || !p.Equal(x.MulConst(3)) {
		t.Fatalf("3*x got %s ok=%v", p, ok)
	}
}

func TestEval(t *testing.T) {
	e := Var("a").MulConst(2).Add(Var("b")).AddConst(-1)
	v, err := e.Eval(map[Symbol]int64{"a": 10, "b": 5})
	if err != nil || v != 24 {
		t.Fatalf("eval got %d err %v", v, err)
	}
	if _, err := e.Eval(map[Symbol]int64{"a": 10}); err == nil {
		t.Fatal("missing binding must error")
	}
}

func TestSubst(t *testing.T) {
	e := Var("a").MulConst(2).Add(Var("b"))
	r := e.Subst("a", Var("c").AddConst(1)) // 2c+2+b
	want := Var("c").MulConst(2).Add(Var("b")).AddConst(2)
	if !r.Equal(want) {
		t.Fatalf("subst got %s want %s", r, want)
	}
	// substituting an absent symbol is identity
	if !e.Subst("zz", Const(5)).Equal(e) {
		t.Fatal("subst of absent symbol changed expression")
	}
}

func TestContextConstFacts(t *testing.T) {
	c := NewContext()
	if !c.ProveGE(Const(5), Const(3)) {
		t.Fatal("5 ≥ 3")
	}
	if c.ProveGE(Const(2), Const(3)) {
		t.Fatal("2 ≥ 3 must fail")
	}
	if !c.ProveEQ(Const(4), Const(4)) {
		t.Fatal("4 = 4")
	}
	if !c.ProveNE(Const(4), Const(5)) {
		t.Fatal("4 ≠ 5")
	}
}

func TestContextEntailment(t *testing.T) {
	c := NewContext()
	s := Var("S")
	h := Var("H")
	c.AssumePositive("S")
	c.AssumeGE(h, s.MulConst(2)) // H ≥ 2S

	if !c.ProveGE(h, s) {
		t.Fatal("H ≥ 2S ∧ S ≥ 1 ⊨ H ≥ S")
	}
	if !c.ProveGT(h, Const(0)) {
		t.Fatal("H > 0 should follow")
	}
	if c.ProveGE(s, h) {
		t.Fatal("S ≥ H must not be provable")
	}
	if c.ProveEQ(s, h) {
		t.Fatal("S = H must not be provable")
	}
}

func TestContextEquality(t *testing.T) {
	c := NewContext()
	a, b := Var("a"), Var("b")
	c.AssumeEQ(a, b.MulConst(2))
	if !c.ProveEQ(a.MulConst(3), b.MulConst(6)) {
		t.Fatal("3a = 6b should follow from a = 2b")
	}
	if !c.ProveNE(a.AddConst(1), b.MulConst(2)) {
		t.Fatal("a+1 ≠ 2b should follow")
	}
}

func TestContextShardSizes(t *testing.T) {
	// Typical use: hidden H split over T ranks with per-shard size Hs,
	// constraint H = T*Hs with T = 2 concrete.
	c := NewContext()
	h, hs := Var("H"), Var("Hs")
	c.AssumePositive("Hs")
	c.AssumeEQ(h, hs.MulConst(2))
	if !c.ProveEQ(hs.Add(hs), h) {
		t.Fatal("Hs+Hs = H")
	}
	if !c.ProveLT(hs, h) {
		t.Fatal("Hs < H since Hs ≥ 1")
	}
}

func TestContextClone(t *testing.T) {
	c := NewContext()
	c.AssumePositive("x")
	c2 := c.Clone()
	c2.AssumeGE(Var("x"), Const(10))
	if c.ProveGE(Var("x"), Const(10)) {
		t.Fatal("mutating clone leaked into original")
	}
	if !c2.ProveGE(Var("x"), Const(10)) {
		t.Fatal("clone lost the added assumption")
	}
	if len(c.Assumptions()) != 1 || len(c2.Assumptions()) != 2 {
		t.Fatalf("assumption counts %d/%d", len(c.Assumptions()), len(c2.Assumptions()))
	}
}

// Property: Add is commutative and associative; Sub(a,a) is zero.
func TestQuickAlgebraLaws(t *testing.T) {
	mk := func(c1, c2, c3, k int64) Expr {
		return Var("x").MulConst(c1 % 7).Add(Var("y").MulConst(c2 % 7)).Add(Var("z").MulConst(c3 % 7)).AddConst(k % 100)
	}
	comm := func(a1, a2, a3, ak, b1, b2, b3, bk int64) bool {
		a, b := mk(a1, a2, a3, ak), mk(b1, b2, b3, bk)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Fatal(err)
	}
	selfSub := func(a1, a2, a3, ak int64) bool {
		a := mk(a1, a2, a3, ak)
		return a.Sub(a).Zero()
	}
	if err := quick.Check(selfSub, nil); err != nil {
		t.Fatal(err)
	}
	keyAgrees := func(a1, a2, a3, ak, b1, b2, b3, bk int64) bool {
		a, b := mk(a1, a2, a3, ak), mk(b1, b2, b3, bk)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(keyAgrees, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random small linear systems, entailment answers agree
// with brute-force search over a bounded integer grid: if FM proves
// a ≥ b under assumptions, no grid point satisfying the assumptions may
// violate it.
func TestQuickEntailmentSoundOnGrid(t *testing.T) {
	type tc struct {
		A1, A2, AK int64 // assumption: A1·x + A2·y + AK ≥ 0
		Q1, Q2, QK int64 // query: Q1·x + Q2·y + QK ≥ 0
	}
	check := func(c tc) bool {
		a := Var("x").MulConst(c.A1 % 4).Add(Var("y").MulConst(c.A2 % 4)).AddConst(c.AK % 6)
		q := Var("x").MulConst(c.Q1 % 4).Add(Var("y").MulConst(c.Q2 % 4)).AddConst(c.QK % 6)
		ctx := NewContext()
		ctx.AssumeGE(a, Const(0))
		if !ctx.ProveGE(q, Const(0)) {
			return true // "unknown" is always sound
		}
		for x := int64(-5); x <= 5; x++ {
			for y := int64(-5); y <= 5; y++ {
				env := map[Symbol]int64{"x": x, "y": y}
				av, _ := a.Eval(env)
				if av < 0 {
					continue
				}
				qv, _ := q.Eval(env)
				if qv < 0 {
					return false // proved but falsified on grid
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringAndKeyStability(t *testing.T) {
	e := Var("b").Add(Var("a")).AddConst(-3)
	e2 := Var("a").Add(Var("b")).AddConst(-3)
	if e.Key() != e2.Key() {
		t.Fatalf("key not order-independent: %q vs %q", e.Key(), e2.Key())
	}
	if e.String() == "" || Const(0).String() != "0" {
		t.Fatal("string rendering broken")
	}
}
