package sym

import (
	"fmt"
	"sort"
	"strings"
)

// Context holds assumptions about symbolic scalars and answers
// entailment queries. Assumptions are linear inequalities of the form
// expr ≥ 0 over integer symbols. Queries are decided by refutation:
// "ctx ⊨ e ≥ 0" holds when ctx ∧ (e ≤ -1) is unsatisfiable, checked
// with Fourier–Motzkin elimination over the rationals (sound for
// entailment; incomplete only for integer-specific cuts, which the
// paper's workloads do not need).
type Context struct {
	// assumptions, each meaning expr ≥ 0.
	geqZero []Expr
}

// NewContext returns an empty assumption context.
func NewContext() *Context { return &Context{} }

// Clone returns an independent copy of the context.
func (c *Context) Clone() *Context {
	n := &Context{geqZero: make([]Expr, len(c.geqZero))}
	copy(n.geqZero, c.geqZero)
	return n
}

// AssumeGE records the assumption a ≥ b.
func (c *Context) AssumeGE(a, b Expr) { c.geqZero = append(c.geqZero, a.Sub(b)) }

// AssumeGT records the assumption a > b (a ≥ b+1 over integers).
func (c *Context) AssumeGT(a, b Expr) { c.AssumeGE(a, b.AddConst(1)) }

// AssumeEQ records the assumption a = b.
func (c *Context) AssumeEQ(a, b Expr) {
	c.AssumeGE(a, b)
	c.AssumeGE(b, a)
}

// AssumePositive records s ≥ 1 for a symbol.
func (c *Context) AssumePositive(s Symbol) { c.AssumeGT(Var(s), Const(0)) }

// Assumptions returns a copy of the recorded assumptions (each ≥ 0).
func (c *Context) Assumptions() []Expr {
	out := make([]Expr, len(c.geqZero))
	copy(out, c.geqZero)
	return out
}

// ProveEQ reports whether the context entails a = b. Purely syntactic
// equality succeeds without consulting assumptions.
func (c *Context) ProveEQ(a, b Expr) bool {
	if a.Equal(b) {
		return true
	}
	return c.ProveGE(a, b) && c.ProveGE(b, a)
}

// ProveNE reports whether the context entails a ≠ b.
func (c *Context) ProveNE(a, b Expr) bool {
	return c.ProveGT(a, b) || c.ProveGT(b, a)
}

// ProveGE reports whether the context entails a ≥ b.
func (c *Context) ProveGE(a, b Expr) bool {
	d := a.Sub(b)
	if v, ok := d.IsConst(); ok {
		return v >= 0
	}
	// Refute: assumptions ∧ (d ≤ -1)  i.e.  (-d - 1 ≥ 0).
	sys := make([]Expr, 0, len(c.geqZero)+1)
	sys = append(sys, c.geqZero...)
	sys = append(sys, d.Neg().AddConst(-1))
	return !satisfiable(sys)
}

// ProveGT reports whether the context entails a > b.
func (c *Context) ProveGT(a, b Expr) bool { return c.ProveGE(a, b.AddConst(1)) }

// ProveLE reports whether the context entails a ≤ b.
func (c *Context) ProveLE(a, b Expr) bool { return c.ProveGE(b, a) }

// ProveLT reports whether the context entails a < b.
func (c *Context) ProveLT(a, b Expr) bool { return c.ProveGT(b, a) }

// rat is an exact rational with int64 parts; the systems here are tiny
// so overflow is not a practical concern, but we normalize by gcd to
// keep magnitudes small.
type rat struct{ num, den int64 }

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// ineq is Σ coeff·sym + konst ≥ 0 with rational scaling absorbed into
// integer coefficients.
type ineq struct {
	coeffs map[Symbol]int64
	konst  int64
}

func toIneq(e Expr) ineq {
	m := make(map[Symbol]int64, len(e.coeffs))
	for s, v := range e.coeffs {
		m[s] = v
	}
	return ineq{coeffs: m, konst: e.konst}
}

func (q ineq) normalize() ineq {
	g := q.konst
	for _, v := range q.coeffs {
		g = gcd64(g, v)
	}
	if g > 1 {
		nm := make(map[Symbol]int64, len(q.coeffs))
		for s, v := range q.coeffs {
			nm[s] = v / g
		}
		return ineq{coeffs: nm, konst: q.konst / g}
	}
	return q
}

func (q ineq) key() string {
	syms := make([]Symbol, 0, len(q.coeffs))
	for s := range q.coeffs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d", q.konst)
	for _, s := range syms {
		fmt.Fprintf(&b, "|%s:%d", s, q.coeffs[s])
	}
	return b.String()
}

const fmMaxIneqs = 4096 // guard against pathological blowup

// satisfiable decides whether the system {e ≥ 0 : e ∈ sys} has a
// rational solution, by Fourier–Motzkin elimination.
func satisfiable(sys []Expr) bool {
	work := make([]ineq, 0, len(sys))
	seen := map[string]bool{}
	for _, e := range sys {
		q := toIneq(e).normalize()
		k := q.key()
		if !seen[k] {
			seen[k] = true
			work = append(work, q)
		}
	}
	for {
		// Find a symbol still present.
		var sym Symbol
		found := false
		for _, q := range work {
			for s := range q.coeffs {
				sym, found = s, true
				break
			}
			if found {
				break
			}
		}
		if !found {
			// Only constants remain: satisfiable iff all ≥ 0.
			for _, q := range work {
				if q.konst < 0 {
					return false
				}
			}
			return true
		}
		var lower, upper, rest []ineq // lower: +coeff (x ≥ …), upper: -coeff (x ≤ …)
		for _, q := range work {
			c := q.coeffs[sym]
			switch {
			case c > 0:
				lower = append(lower, q)
			case c < 0:
				upper = append(upper, q)
			default:
				rest = append(rest, q)
			}
		}
		next := rest
		seen = map[string]bool{}
		for _, q := range next {
			seen[q.key()] = true
		}
		for _, lo := range lower {
			for _, up := range upper {
				// lo: a·x + L ≥ 0 (a>0) → x ≥ -L/a
				// up: -b·x + U ≥ 0 (b>0) → x ≤ U/b
				// combine: b·L + a·U ≥ 0
				a := lo.coeffs[sym]
				b := -up.coeffs[sym]
				comb := ineq{coeffs: map[Symbol]int64{}}
				for s, v := range lo.coeffs {
					if s != sym {
						comb.coeffs[s] += v * b
					}
				}
				for s, v := range up.coeffs {
					if s != sym {
						comb.coeffs[s] += v * a
					}
				}
				for s, v := range comb.coeffs {
					if v == 0 {
						delete(comb.coeffs, s)
					}
				}
				comb.konst = lo.konst*b + up.konst*a
				comb = comb.normalize()
				k := comb.key()
				if !seen[k] {
					seen[k] = true
					next = append(next, comb)
				}
				if len(next) > fmMaxIneqs {
					// Give up conservatively: report satisfiable, so the
					// caller's Prove* returns false ("unknown").
					return true
				}
			}
		}
		work = next
	}
}
