package sym

import (
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := map[string]Expr{
		"0":       Const(0),
		"42":      Const(42),
		"-7":      Const(-7),
		"S":       Var("S"),
		"-S":      Var("S").MulConst(-1),
		"2*S":     Var("S").MulConst(2),
		"2*S+1":   Var("S").MulConst(2).AddConst(1),
		"S+H":     Var("S").Add(Var("H")),
		"S-H+3":   Var("S").Sub(Var("H")).AddConst(3),
		" 3 + S ": Var("S").AddConst(3),
		"a_b.c":   Var("a_b.c"),
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %s want %s", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "+", "*S", "2*", "S S", "3..", "!"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage must panic")
		}
	}()
	MustParse("@@")
}

// Property: Parse(e.String()) round-trips.
func TestQuickParseRoundTrip(t *testing.T) {
	f := func(c1, c2, k int64) bool {
		e := Var("x").MulConst(c1 % 9).Add(Var("y").MulConst(c2 % 9)).AddConst(k % 1000)
		got, err := Parse(e.String())
		return err == nil && got.Equal(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
