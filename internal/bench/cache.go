package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/lemmas"
	"entangle/internal/vcache"
)

// CachePoint is one workload's cold/warm measurement pair against the
// content-addressed verdict cache — one row of `entangle-bench -exp
// cache` and one entry of the BENCH_cache.json trajectory.
type CachePoint struct {
	Workload string  `json:"workload"`
	Ops      int     `json:"ops"`
	ColdMS   float64 `json:"cold_ms"`
	WarmMS   float64 `json:"warm_ms"`
	// Speedup is cold wall-clock over warm wall-clock.
	Speedup float64 `json:"speedup"`
	// HitRate is the warm run's hits / (hits + misses); 1.0 means
	// every operator replayed a stored verdict.
	HitRate float64 `json:"hit_rate"`
	Hits    int64   `json:"hits"`
	Stores  int64   `json:"stores"`
	// ColdIters / WarmIters are the runs' live saturation iterations;
	// a warm run over an unchanged graph must report zero.
	ColdIters int `json:"cold_iterations"`
	WarmIters int `json:"warm_iterations"`
}

// Cache measures the verdict cache on the Figure 3 model set: each
// workload is checked twice against one fresh on-disk cache — a cold
// run that pays full saturation and stores every verdict, then a warm
// run that must replay them all (zero live saturation iterations).
func Cache() (string, []CachePoint, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Cache: cold vs warm verdict-cache runs (parallelism 2, 1 layer)")
	fmt.Fprintf(&out, "%-16s %8s %10s %10s %9s %9s\n", "model", "#ops", "cold", "warm", "speedup", "hit-rate")
	var points []CachePoint
	for _, w := range Fig3Workloads() {
		p, err := cachePoint(w, 2, 1)
		if err != nil {
			return "", nil, err
		}
		points = append(points, *p)
		fmt.Fprintf(&out, "%-16s %8d %10s %10s %8.1fx %8.0f%%\n",
			p.Workload, p.Ops,
			time.Duration(p.ColdMS*float64(time.Millisecond)).Round(time.Millisecond),
			time.Duration(p.WarmMS*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.Speedup, 100*p.HitRate)
	}
	fmt.Fprintln(&out, "(warm runs perform zero saturation iterations: every verdict replays from the cache)")
	return out.String(), points, nil
}

// cachePoint runs one workload cold then warm against a fresh
// disk-backed cache in a temporary directory.
func cachePoint(w Workload, parallel, layers int) (*CachePoint, error) {
	b, err := w.Build(parallel, layers)
	if err != nil {
		return nil, err
	}
	gs, gd, ri := b.Gs, b.Gd, b.Ri
	if w.ViaHLO {
		gs, gd, ri, err = roundTripHLO(b)
		if err != nil {
			return nil, err
		}
	}
	dir, err := os.MkdirTemp("", "entangle-bench-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	vc, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	checker := core.NewChecker(core.Options{Registry: lemmas.Default(), Cache: vc})

	start := time.Now()
	cold, err := checker.Check(gs, gd, ri)
	if err != nil {
		return nil, fmt.Errorf("%s cold: %v", w.Name, err)
	}
	coldD := time.Since(start)

	start = time.Now()
	warm, err := checker.Check(gs, gd, ri)
	if err != nil {
		return nil, fmt.Errorf("%s warm: %v", w.Name, err)
	}
	warmD := time.Since(start)
	if warm.LiveStats.Iterations != 0 {
		return nil, fmt.Errorf("%s warm run re-saturated: %d live iterations", w.Name, warm.LiveStats.Iterations)
	}

	hitRate := 0.0
	if lookups := warm.Cache.Hits + warm.Cache.Misses; lookups > 0 {
		hitRate = float64(warm.Cache.Hits) / float64(lookups)
	}
	speedup := 0.0
	if warmD > 0 {
		speedup = float64(coldD) / float64(warmD)
	}
	return &CachePoint{
		Workload:  w.Name,
		Ops:       gs.OperatorCount() + gd.OperatorCount(),
		ColdMS:    float64(coldD) / float64(time.Millisecond),
		WarmMS:    float64(warmD) / float64(time.Millisecond),
		Speedup:   speedup,
		HitRate:   hitRate,
		Hits:      warm.Cache.Hits,
		Stores:    cold.Cache.Stores,
		ColdIters: cold.LiveStats.Iterations,
		WarmIters: warm.LiveStats.Iterations,
	}, nil
}
