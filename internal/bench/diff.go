package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/vcache"
)

// DiffPoint is one workload's full-check vs incremental-recheck
// measurement — one row of `entangle-bench -exp diff` and one entry of
// the BENCH_diff.json trajectory. The edit is a single-operator change
// (the last add/sum's operands swapped: refinement-preserving, but the
// cone fingerprint moves), so the diff run must re-check exactly the
// edited operator's downstream cone and replay everything else.
type DiffPoint struct {
	Workload string `json:"workload"`
	// Ops counts the G_s operators; ConeSize the edited operator's
	// downstream cone (itself included) — the re-check lower bound.
	Ops      int     `json:"ops"`
	EditedOp string  `json:"edited_op"`
	ConeSize int     `json:"cone_size"`
	FullMS   float64 `json:"full_ms"`
	DiffMS   float64 `json:"diff_ms"`
	// Speedup is the cold full check's wall clock over the diff run's.
	Speedup   float64 `json:"speedup"`
	Replayed  int     `json:"replayed"`
	Rechecked int     `json:"rechecked"`
}

// Diff measures diff-aware incremental re-verification on the
// ByteDance forward and forward+backward workloads: a cold full check
// populates the verdict cache, then a single-operator edit is
// re-verified with core.DiffCheck. The run fails — it is CI's
// correctness smoke gate, not just a stopwatch — unless the diff
// re-checks exactly the edit's downstream cone and replays every
// unchanged operator from the cache.
func Diff() (string, []DiffPoint, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Diff: full cold check vs single-op-edit incremental re-check (parallelism 2, 1 layer)")
	fmt.Fprintf(&out, "%-16s %6s %-22s %6s %10s %10s %9s\n",
		"model", "#ops", "edited", "cone", "full", "diff", "speedup")
	var points []DiffPoint
	for _, w := range Fig3Workloads() {
		if w.Name != "ByteDance-Fwd" && w.Name != "ByteDance-Bwd" {
			continue
		}
		p, err := diffPoint(w, 2, 1)
		if err != nil {
			return "", nil, err
		}
		points = append(points, *p)
		fmt.Fprintf(&out, "%-16s %6d %-22s %6d %10s %10s %8.1fx\n",
			p.Workload, p.Ops, p.EditedOp, p.ConeSize,
			time.Duration(p.FullMS*float64(time.Millisecond)).Round(time.Millisecond),
			time.Duration(p.DiffMS*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.Speedup)
	}
	fmt.Fprintln(&out, "(each diff run re-checks exactly the edited operator's downstream cone; all other verdicts replay)")
	return out.String(), points, nil
}

// diffPoint runs one workload's full check plus the edited re-check
// against a fresh disk-backed cache.
func diffPoint(w Workload, parallel, layers int) (*DiffPoint, error) {
	b, err := w.Build(parallel, layers)
	if err != nil {
		return nil, err
	}
	newGs, edited, err := editOneOp(b.Gs)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", w.Name, err)
	}
	cone, err := downstreamCone(newGs, edited)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "entangle-bench-diff-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	vc, err := vcache.Open(vcache.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	checker := core.NewChecker(core.Options{Registry: lemmas.Default(), Cache: vc})

	start := time.Now()
	if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
		return nil, fmt.Errorf("%s full check: %v", w.Name, err)
	}
	fullD := time.Since(start)

	// The clone preserves tensor IDs, so the old relation serves the
	// edited graph unchanged.
	start = time.Now()
	delta, err := checker.DiffCheck(b.Gs, newGs, b.Gd, b.Ri, b.Ri)
	if err != nil {
		return nil, fmt.Errorf("%s diff check: %v", w.Name, err)
	}
	diffD := time.Since(start)

	if delta.RecheckedOps != len(cone) {
		return nil, fmt.Errorf("%s: diff re-checked %d operators, edited cone has %d",
			w.Name, delta.RecheckedOps, len(cone))
	}
	if delta.ReplayedOps != delta.UnchangedOps {
		return nil, fmt.Errorf("%s: only %d of %d unchanged operators replayed from the warm cache",
			w.Name, delta.ReplayedOps, delta.UnchangedOps)
	}
	speedup := 0.0
	if diffD > 0 {
		speedup = float64(fullD) / float64(diffD)
	}
	return &DiffPoint{
		Workload:  w.Name,
		Ops:       b.Gs.OperatorCount(),
		EditedOp:  newGs.Node(edited).Label,
		ConeSize:  len(cone),
		FullMS:    float64(fullD) / float64(time.Millisecond),
		DiffMS:    float64(diffD) / float64(time.Millisecond),
		Speedup:   speedup,
		Replayed:  delta.ReplayedOps,
		Rechecked: delta.RecheckedOps,
	}, nil
}

// editOneOp clones gs and swaps the operands of the last add/sum in
// topological order: elementwise-commutative, so refinement still
// holds, but cone fingerprints hash input order, so the operator and
// its downstream cone become dirty.
func editOneOp(gs *graph.Graph) (*graph.Graph, graph.NodeID, error) {
	order, err := gs.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if (v.Op != expr.OpAdd && v.Op != expr.OpSum) || len(v.Inputs) < 2 || v.Inputs[0] == v.Inputs[1] {
			continue
		}
		edited := gs.Clone()
		n := edited.Node(v.ID)
		n.Inputs[0], n.Inputs[1] = n.Inputs[1], n.Inputs[0]
		return edited, v.ID, nil
	}
	return nil, 0, fmt.Errorf("no add/sum operator to edit")
}

// downstreamCone returns the IDs of root and every operator
// transitively consuming one of its outputs — the set a correct diff
// re-checks after editing root.
func downstreamCone(g *graph.Graph, root graph.NodeID) (map[graph.NodeID]bool, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	cone := map[graph.NodeID]bool{root: true}
	for _, v := range order {
		if cone[v.ID] {
			continue
		}
		for _, in := range v.Inputs {
			if p := g.Tensor(in).Producer; p != graph.NoProducer && cone[p] {
				cone[v.ID] = true
				break
			}
		}
	}
	return cone, nil
}
