package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/models"
)

// Extensions exercises the three §2.1 strategies the paper could not
// evaluate because of TorchDynamo limitations (§6.1): data parallelism
// (contiguous gradient buffers), pipeline parallelism (intermediate
// leaf tensors), and context parallelism. Our capture substrate has
// neither limitation, so these run as ordinary refinement checks.
func Extensions() (string, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Extensions: the §2.1 strategies the paper could not capture")
	fmt.Fprintf(&out, "%-22s %-34s %10s %12s\n", "workload", "strategy", "#ops", "time")

	type ext struct {
		name, strat string
		build       func() (*models.Built, error)
	}
	cases := []ext{
		{"DataParallel(2)", "DP fwd+bwd, DDP grad sync", func() (*models.Built, error) {
			return models.DataParallel(2, true)
		}},
		{"DataParallel(4)", "DP fwd+bwd, DDP grad sync", func() (*models.Built, error) {
			return models.DataParallel(4, true)
		}},
		{"Pipeline(2)", "PP, 2 stages × 2 microbatches", func() (*models.Built, error) {
			return models.Pipeline(2, false)
		}},
		{"Pipeline(4)", "PP, 2 stages × 4 microbatches", func() (*models.Built, error) {
			return models.Pipeline(4, false)
		}},
		{"ContextParallel(2)", "CP, blockwise attention", func() (*models.Built, error) {
			return models.ContextParallel(2)
		}},
		{"ContextParallel(4)", "CP, blockwise attention", func() (*models.Built, error) {
			return models.ContextParallel(4)
		}},
	}
	checker := core.NewChecker(core.Options{})
	for _, c := range cases {
		b, err := c.build()
		if err != nil {
			return "", err
		}
		start := time.Now()
		if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
			return "", fmt.Errorf("%s: %v", c.name, err)
		}
		fmt.Fprintf(&out, "%-22s %-34s %10d %12s\n", c.name, c.strat,
			b.Gs.OperatorCount()+b.Gd.OperatorCount(), time.Since(start).Round(time.Millisecond))
	}

	// DP without gradient sync: plain refinement holds, the DDP user
	// expectation is violated — same §4.4 shape as bugs 5/8/9.
	b, err := models.DataParallel(2, false)
	if err != nil {
		return "", err
	}
	err = checker.CheckExpectation(b.Gs, b.Gd, b.Ri,
		core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
	var ee *core.ExpectationError
	if !errors.As(err, &ee) {
		return "", fmt.Errorf("unsynced DP should violate the DDP expectation, got %v", err)
	}
	fmt.Fprintln(&out, "DataParallel(2) without gradient sync: refinement holds, DDP expectation VIOLATED (detected)")
	return out.String(), nil
}
