package bench

import (
	"reflect"
	"strings"
	"testing"

	"entangle/internal/core"
	"entangle/internal/egraph"
	"entangle/internal/lemmas"
	"entangle/internal/vcache"
)

// TestSaturationDifferential is the equivalence property test for the
// indexed saturation path: over the saturation corpus, the indexed
// matcher (with dirty-class tracking and the applied-fingerprint
// filter) must be observationally identical to the naive full-scan
// matcher, and any worker count must be observationally identical to
// the sequential walk. "Observationally identical" is pinned as: the
// same per-rule application counts, the same iteration count and stop
// profile, the same verdict lines, and byte-identical output-relation
// renderings. Matches are deliberately NOT compared — the indexed
// matcher is free to skip already-applied matches that the naive
// matcher still enumerates.
func TestSaturationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("model corpus differential is not short")
	}
	for _, w := range saturateWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b, err := w.Build(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			gs, gd, ri := b.Gs, b.Gd, b.Ri
			if w.ViaHLO {
				gs, gd, ri, err = roundTripHLO(b)
				if err != nil {
					t.Fatal(err)
				}
			}

			type variant struct {
				name string
				opts core.Options
			}
			variants := []variant{
				{"indexed-w1", core.Options{Registry: lemmas.Default(), Workers: 1}},
				{"naive-w1", core.Options{Registry: lemmas.Default(), Workers: 1,
					Saturate: egraph.SaturateOpts{Unindexed: true}}},
				{"indexed-w4", core.Options{Registry: lemmas.Default(), Workers: 4}},
			}

			type observed struct {
				apps     map[string]int
				iters    int
				stops    [3]int // saturated runs are the remainder
				verdicts string
				outputs  string
			}
			obs := make([]observed, len(variants))
			for i, v := range variants {
				rep, err := core.NewChecker(v.opts).Check(gs, gd, ri)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				var vs strings.Builder
				for _, ov := range rep.Verdicts {
					vs.WriteString(ov.Describe())
					vs.WriteByte('\n')
				}
				obs[i] = observed{
					apps:     rep.Stats.Applications,
					iters:    rep.Stats.Iterations,
					stops:    [3]int{rep.Stats.Runs, rep.Stats.BudgetHit, rep.Stats.Cancelled},
					verdicts: vs.String(),
					outputs:  rep.OutputRelation.Render(gs),
				}
			}

			base := obs[0]
			for i, v := range variants[1:] {
				got := obs[i+1]
				if !reflect.DeepEqual(base.apps, got.apps) {
					t.Errorf("%s: rule applications diverge:\n base %v\n got  %v", v.name, base.apps, got.apps)
				}
				if base.iters != got.iters || base.stops != got.stops {
					t.Errorf("%s: stats profile diverges: base iters=%d stops=%v, got iters=%d stops=%v",
						v.name, base.iters, base.stops, got.iters, got.stops)
				}
				if base.verdicts != got.verdicts {
					t.Errorf("%s: verdict lines diverge:\n base:\n%s\n got:\n%s", v.name, base.verdicts, got.verdicts)
				}
				if base.outputs != got.outputs {
					t.Errorf("%s: output relation diverges:\n base:\n%s\n got:\n%s", v.name, base.outputs, got.outputs)
				}
			}
		})
	}
}

// TestPlannedPathDifferential is the equivalence property test for the
// plan/execute split: over the saturation corpus, the planned path
// (dispositions decided up front, cache probes prefetched into the
// Plan) must be observationally identical to the legacy inline path
// (Options.Unplanned) at workers 1 and 4, on both a cold and a warm
// verdict cache. "Observationally identical" here additionally pins
// the cache counters: the plan-time prefetch must not double-count
// hits or misses relative to inline probing.
func TestPlannedPathDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("model corpus differential is not short")
	}
	for _, w := range saturateWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b, err := w.Build(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			gs, gd, ri := b.Gs, b.Gd, b.Ri
			if w.ViaHLO {
				gs, gd, ri, err = roundTripHLO(b)
				if err != nil {
					t.Fatal(err)
				}
			}

			type variant struct {
				name      string
				workers   int
				unplanned bool
			}
			variants := []variant{
				{"planned-w1", 1, false},
				{"unplanned-w1", 1, true},
				{"planned-w4", 4, false},
				{"unplanned-w4", 4, true},
			}

			type observed struct {
				verdicts string
				outputs  string
				iters    int
				cache    core.CacheStats
			}
			// Each variant gets its own fresh cache so cold runs are
			// genuinely cold; phase 0 is the cold pass, phase 1 replays
			// the same check against the now-warm cache.
			obs := make([][2]observed, len(variants))
			for i, v := range variants {
				vc, err := vcache.Open(vcache.Config{Dir: t.TempDir()})
				if err != nil {
					t.Fatal(err)
				}
				checker := core.NewChecker(core.Options{
					Registry: lemmas.Default(), Workers: v.workers,
					Cache: vc, Unplanned: v.unplanned,
				})
				for phase := 0; phase < 2; phase++ {
					rep, err := checker.Check(gs, gd, ri)
					if err != nil {
						t.Fatalf("%s phase %d: %v", v.name, phase, err)
					}
					var vs strings.Builder
					for _, ov := range rep.Verdicts {
						vs.WriteString(ov.Describe())
						vs.WriteByte('\n')
					}
					cache := rep.Cache
					obs[i][phase] = observed{
						verdicts: vs.String(),
						outputs:  rep.OutputRelation.Render(gs),
						iters:    rep.Stats.Iterations,
						cache:    cache,
					}
					if v.unplanned && rep.Plan != nil {
						t.Fatalf("%s phase %d: unplanned run still produced a plan", v.name, phase)
					}
					if !v.unplanned && rep.Plan == nil {
						t.Fatalf("%s phase %d: planned run produced no plan", v.name, phase)
					}
				}
			}

			for phase, label := range []string{"cold", "warm"} {
				base := obs[0][phase]
				for i, v := range variants[1:] {
					got := obs[i+1][phase]
					if base.verdicts != got.verdicts {
						t.Errorf("%s %s: verdict lines diverge:\n base:\n%s\n got:\n%s", v.name, label, base.verdicts, got.verdicts)
					}
					if base.outputs != got.outputs {
						t.Errorf("%s %s: output relation diverges:\n base:\n%s\n got:\n%s", v.name, label, base.outputs, got.outputs)
					}
					if base.iters != got.iters {
						t.Errorf("%s %s: iterations diverge: base %d, got %d", v.name, label, base.iters, got.iters)
					}
					// Counter parity: every op is probed exactly once on
					// both paths, so hits+misses always agree. The split
					// itself agrees only on the warm pass: on a cold cache
					// the inline path can hit a verdict stored EARLIER IN
					// THE SAME RUN by a duplicate-cone sibling, which the
					// plan-time prefetch (all probes before any store)
					// deliberately reads as a miss — the verdicts still
					// match, since a duplicate cone replays identically.
					if base.cache.Hits+base.cache.Misses != got.cache.Hits+got.cache.Misses {
						t.Errorf("%s %s: probe counts diverge: base %+v, got %+v", v.name, label, base.cache, got.cache)
					}
					if phase == 1 && base.cache != got.cache {
						t.Errorf("%s %s: cache counters diverge: base %+v, got %+v", v.name, label, base.cache, got.cache)
					}
				}
			}
		})
	}
}
