package bench

import (
	"reflect"
	"strings"
	"testing"

	"entangle/internal/core"
	"entangle/internal/egraph"
	"entangle/internal/lemmas"
)

// TestSaturationDifferential is the equivalence property test for the
// indexed saturation path: over the saturation corpus, the indexed
// matcher (with dirty-class tracking and the applied-fingerprint
// filter) must be observationally identical to the naive full-scan
// matcher, and any worker count must be observationally identical to
// the sequential walk. "Observationally identical" is pinned as: the
// same per-rule application counts, the same iteration count and stop
// profile, the same verdict lines, and byte-identical output-relation
// renderings. Matches are deliberately NOT compared — the indexed
// matcher is free to skip already-applied matches that the naive
// matcher still enumerates.
func TestSaturationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("model corpus differential is not short")
	}
	for _, w := range saturateWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b, err := w.Build(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			gs, gd, ri := b.Gs, b.Gd, b.Ri
			if w.ViaHLO {
				gs, gd, ri, err = roundTripHLO(b)
				if err != nil {
					t.Fatal(err)
				}
			}

			type variant struct {
				name string
				opts core.Options
			}
			variants := []variant{
				{"indexed-w1", core.Options{Registry: lemmas.Default(), Workers: 1}},
				{"naive-w1", core.Options{Registry: lemmas.Default(), Workers: 1,
					Saturate: egraph.SaturateOpts{Unindexed: true}}},
				{"indexed-w4", core.Options{Registry: lemmas.Default(), Workers: 4}},
			}

			type observed struct {
				apps     map[string]int
				iters    int
				stops    [3]int // saturated runs are the remainder
				verdicts string
				outputs  string
			}
			obs := make([]observed, len(variants))
			for i, v := range variants {
				rep, err := core.NewChecker(v.opts).Check(gs, gd, ri)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				var vs strings.Builder
				for _, ov := range rep.Verdicts {
					vs.WriteString(ov.Describe())
					vs.WriteByte('\n')
				}
				obs[i] = observed{
					apps:     rep.Stats.Applications,
					iters:    rep.Stats.Iterations,
					stops:    [3]int{rep.Stats.Runs, rep.Stats.BudgetHit, rep.Stats.Cancelled},
					verdicts: vs.String(),
					outputs:  rep.OutputRelation.Render(gs),
				}
			}

			base := obs[0]
			for i, v := range variants[1:] {
				got := obs[i+1]
				if !reflect.DeepEqual(base.apps, got.apps) {
					t.Errorf("%s: rule applications diverge:\n base %v\n got  %v", v.name, base.apps, got.apps)
				}
				if base.iters != got.iters || base.stops != got.stops {
					t.Errorf("%s: stats profile diverges: base iters=%d stops=%v, got iters=%d stops=%v",
						v.name, base.iters, base.stops, got.iters, got.stops)
				}
				if base.verdicts != got.verdicts {
					t.Errorf("%s: verdict lines diverge:\n base:\n%s\n got:\n%s", v.name, base.verdicts, got.verdicts)
				}
				if base.outputs != got.outputs {
					t.Errorf("%s: output relation diverges:\n base:\n%s\n got:\n%s", v.name, base.outputs, got.outputs)
				}
			}
		})
	}
}
