package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"entangle/internal/core"
	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/models"
)

// parallelWorkloads are the wavefront speedup study's models. The
// MultiTower ensembles are the wide cases — their towers form large
// anti-chains in G_s, so the wavefront scheduler can keep a full pool
// busy. The transformer stacks are the control group: their G_s is a
// chain of layers (critical path ≈ total work), so DAG-level
// parallelism cannot help them, whatever the pool size.
func parallelWorkloads() []struct {
	w        Workload
	parallel int
	layers   int
} {
	return []struct {
		w        Workload
		parallel int
		layers   int
	}{
		{Workload{Name: "MultiTower-8 (TP)", Build: func(p, l int) (*models.Built, error) {
			return models.MultiTower(8, p)
		}}, 4, 1},
		{Workload{Name: "MultiTower-16 (TP)", Build: func(p, l int) (*models.Built, error) {
			return models.MultiTower(16, p)
		}}, 2, 1},
		{Workload{Name: "GPT (TP+SP)", Build: func(p, l int) (*models.Built, error) {
			return models.GPT(models.Options{TP: p, SP: true, Cfg: models.Config{Layers: l}})
		}}, 4, 3},
		{Workload{Name: "ByteDance-Fwd (MoE)", Build: func(p, l int) (*models.Built, error) {
			cfg := models.SeedMoEConfig()
			cfg.Layers = l
			cfg.Experts = p // one expert per rank, the paper's EP layout
			return models.SeedMoE(models.Options{TP: p, Cfg: cfg})
		}}, 4, 3},
		{Workload{Name: "Regression (chain)", Build: func(p, l int) (*models.Built, error) {
			return models.Regression(models.Options{GradAccum: p})
		}}, 4, 1},
	}
}

// Parallel runs the wavefront scheduler study: for each model it
// measures wall-clock time sequentially (Workers: 1) and with a
// 4-worker pool, and separately profiles per-operator durations to
// compute the DAG's work/span bound and a deterministic simulation of
// the 4-worker wavefront schedule (list scheduling by topo index, the
// scheduler's actual policy). The simulated speedup is
// hardware-independent; the measured one is limited by GOMAXPROCS —
// on a single-CPU host it stays ≈ 1× for every model.
func Parallel() (string, error) {
	const workers = 4
	var out strings.Builder
	fmt.Fprintf(&out, "Wavefront scheduler: sequential vs %d workers (best of 3, GOMAXPROCS=%d)\n",
		workers, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&out, "%-22s %6s %10s %10s %9s %9s %9s\n",
		"model", "#ops", "workers=1", fmt.Sprintf("workers=%d", workers), "measured", "span-lim", fmt.Sprintf("sim@%d", workers))
	for _, c := range parallelWorkloads() {
		seq, err := bestOf(3, c.w, c.parallel, c.layers, 1)
		if err != nil {
			return "", err
		}
		par, err := bestOf(3, c.w, c.parallel, c.layers, workers)
		if err != nil {
			return "", err
		}
		prof, err := profileSchedule(c.w, c.parallel, c.layers, workers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&out, "%-22s %6d %10s %10s %8.2fx %8.2fx %8.2fx\n",
			c.w.Name, prof.ops,
			seq.Duration.Round(time.Millisecond),
			par.Duration.Round(time.Millisecond),
			float64(seq.Duration)/float64(par.Duration),
			prof.spanBound, prof.simSpeedup)
	}
	out.WriteString(`
columns: measured = wall-clock workers=1 / workers=4 (needs >= 4 CPUs to
show; ~1x when GOMAXPROCS=1); span-lim = work/span, the critical-path
ceiling no scheduler can beat; sim@4 = work / simulated 4-worker
wavefront makespan from per-operator timings (list scheduling by topo
index, the shipped policy). Reports are byte-identical across pool
sizes; Workers is purely a wall-clock knob.
`)
	return out.String(), nil
}

// scheduleProfile is the outcome of one per-operator timing analysis.
type scheduleProfile struct {
	ops        int     // |V(G_s)| operators profiled
	spanBound  float64 // work / critical path
	simSpeedup float64 // work / simulated W-worker makespan
}

// profileSchedule times every operator of one sequential check via
// Options.OpObserver, then computes the critical path of G_s weighted
// by those durations and simulates the wavefront policy (W workers,
// earliest-topo-index-first) to get its makespan.
func profileSchedule(w Workload, parallel, layers, workers int) (*scheduleProfile, error) {
	b, err := w.Build(parallel, layers)
	if err != nil {
		return nil, err
	}
	gs, gd, ri := b.Gs, b.Gd, b.Ri
	if w.ViaHLO {
		gs, gd, ri, err = roundTripHLO(b)
		if err != nil {
			return nil, err
		}
	}
	var mu sync.Mutex
	durs := map[graph.NodeID]time.Duration{}
	checker := core.NewChecker(core.Options{
		Registry: lemmas.Default(),
		Workers:  1,
		OpObserver: func(v *graph.Node, d time.Duration) {
			mu.Lock()
			durs[v.ID] = d
			mu.Unlock()
		},
	})
	if _, err := checker.Check(gs, gd, ri); err != nil {
		return nil, fmt.Errorf("%s: %v", w.Name, err)
	}

	order, err := gs.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	d := make([]time.Duration, n)
	var work time.Duration
	for i, v := range order {
		pos[v.ID] = i
		d[i] = durs[v.ID]
		work += d[i]
	}
	producers := func(i int) []int {
		var ps []int
		seen := map[int]bool{}
		for _, in := range order[i].Inputs {
			p := gs.Tensor(in).Producer
			if p == graph.NoProducer {
				continue
			}
			if j := pos[p]; !seen[j] {
				seen[j] = true
				ps = append(ps, j)
			}
		}
		return ps
	}

	// Critical path (span): longest duration-weighted producer chain.
	cp := make([]time.Duration, n)
	var span time.Duration
	for i := range order {
		var best time.Duration
		for _, j := range producers(i) {
			if cp[j] > best {
				best = cp[j]
			}
		}
		cp[i] = best + d[i]
		if cp[i] > span {
			span = cp[i]
		}
	}

	// Simulate the wavefront policy: W workers, ready set ordered by
	// topo index, event-driven completion.
	deps := make([]int, n)
	children := make([][]int, n)
	for i := range order {
		for _, j := range producers(i) {
			deps[i]++
			children[j] = append(children[j], i)
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if deps[i] == 0 {
			ready = append(ready, i)
		}
	}
	type running struct {
		op   int
		done time.Duration
	}
	var pool []running
	var now, makespan time.Duration
	for len(ready) > 0 || len(pool) > 0 {
		sort.Ints(ready)
		for len(pool) < workers && len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			pool = append(pool, running{op: i, done: now + d[i]})
		}
		// Advance to the earliest completion.
		next := 0
		for k := 1; k < len(pool); k++ {
			if pool[k].done < pool[next].done {
				next = k
			}
		}
		fin := pool[next]
		pool = append(pool[:next], pool[next+1:]...)
		now = fin.done
		if now > makespan {
			makespan = now
		}
		for _, c := range children[fin.op] {
			deps[c]--
			if deps[c] == 0 {
				ready = append(ready, c)
			}
		}
	}

	prof := &scheduleProfile{ops: n}
	if span > 0 {
		prof.spanBound = float64(work) / float64(span)
	}
	if makespan > 0 {
		prof.simSpeedup = float64(work) / float64(makespan)
	}
	return prof, nil
}

// bestOf runs a configuration n times and keeps the fastest result.
func bestOf(n int, w Workload, parallel, layers, workers int) (*Result, error) {
	var best *Result
	for i := 0; i < n; i++ {
		res, err := RunWorkers(w, parallel, layers, workers)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Duration < best.Duration {
			best = res
		}
	}
	return best, nil
}
