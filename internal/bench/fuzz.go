package bench

import (
	"fmt"
	"strings"
	"time"

	"entangle/internal/fuzz"
)

// FuzzPoint is one fuzz-campaign measurement — one row of
// `entangle-bench -exp fuzz` and one entry of the BENCH_fuzz.json
// trajectory. The experiment self-gates: a point is only emitted after
// every paper bug class came back as a minimized Disproved witness,
// every correct composition passed the numeric differential, and no
// case was unsound, so the trajectory tracks throughput and gap counts
// of a *verified* fuzzer.
type FuzzPoint struct {
	// Cases is how many compositions (correct + injected) the campaign
	// checked and cross-checked numerically.
	Cases int `json:"cases"`
	// CasesPerSec is end-to-end campaign throughput: compose + check +
	// numeric differential per case.
	CasesPerSec float64 `json:"cases_per_sec"`
	// UniqueGaps counts distinct lemma-gap fingerprints — the fuzzer's
	// standing work list for the lemma library (0 is the goal).
	UniqueGaps int `json:"unique_gaps"`
	// Rediscovered / Injected: injection detection, campaign-wide.
	Injected     int `json:"injected"`
	Rediscovered int `json:"rediscovered"`
	// ClassesRediscovered is how many of the nine paper bug classes
	// the directed rediscovery search brought back as minimized
	// Disproved witnesses (gated to be all nine).
	ClassesRediscovered int `json:"classes_rediscovered"`
	// ShrinkMeanOps is the mean G_s operator count of the minimized
	// witnesses — the shrink-quality metric (small is good).
	ShrinkMeanOps float64 `json:"shrink_mean_ops"`
}

// fuzzCampaignN is the campaign size: large enough that every strategy
// rule and most defect classes get exercised, small enough for a PR
// gate.
const fuzzCampaignN = 40

// Fuzz runs the randomized-strategy fuzzer experiment: a seeded
// campaign plus the directed §6.2 rediscovery sweep, self-gated on
// soundness and on full bug-class coverage.
func Fuzz() (string, []FuzzPoint, error) {
	var out strings.Builder
	out.WriteString("Fuzz: randomized strategies, injected defects, numeric differential (internal/fuzz)\n")
	out.WriteString("-------------------------------------------------------------------------------\n")

	start := time.Now()
	stats, err := fuzz.Run(fuzz.Config{Seed: 20260808, N: fuzzCampaignN, MaxDegree: 4, Workers: 2, Shrink: true})
	if err != nil {
		return "", nil, err
	}
	elapsed := time.Since(start)

	// Gate 1: soundness. A single unsound case poisons the experiment.
	if stats.Unsound > 0 {
		return "", nil, fmt.Errorf("bench: fuzz: %d UNSOUND case(s): %+v", stats.Unsound, stats.Repros)
	}
	fmt.Fprintf(&out, "campaign: %d cases (%d correct, %d injected) in %.2fs\n",
		stats.Cases, stats.Correct, stats.Injected, elapsed.Seconds())
	fmt.Fprintf(&out, "  agree %d  rediscovered %d  masked %d  lemma gaps %d (%d unique)  unsound %d\n",
		stats.Agree, stats.Rediscovered, stats.Masked, stats.LemmaGaps, stats.UniqueGaps(), stats.Unsound)
	for _, k := range stats.SortedGapKeys() {
		fmt.Fprintf(&out, "  gap %-40s ×%d\n", k, stats.GapKeys[k])
	}

	// Gate 2: the §6.2 rediscovery sweep — every paper bug class must
	// come back as a minimized Disproved witness.
	out.WriteString("\nbug-class rediscovery (minimized witnesses):\n")
	totalOps, found := 0, 0
	for _, cl := range fuzz.Classes {
		res, err := fuzz.Rediscover(cl, 42, 2, 200)
		if err != nil {
			return "", nil, fmt.Errorf("bench: fuzz: class %s not rediscovered: %v", cl, err)
		}
		ops := res.Case.Gs.OperatorCount()
		totalOps += ops
		found++
		fmt.Fprintf(&out, "  bug %d %-20s disproved, minimized to %d op(s): %s\n",
			cl.PaperBug(), cl, ops, res.Case.Plan)
	}

	point := FuzzPoint{
		Cases:               stats.Cases,
		CasesPerSec:         float64(stats.Cases) / elapsed.Seconds(),
		UniqueGaps:          stats.UniqueGaps(),
		Injected:            stats.Injected,
		Rediscovered:        stats.Rediscovered,
		ClassesRediscovered: found,
		ShrinkMeanOps:       float64(totalOps) / float64(found),
	}
	fmt.Fprintf(&out, "\nthroughput %.1f cases/sec, %d unique lemma gap(s), shrink quality %.1f mean ops\n",
		point.CasesPerSec, point.UniqueGaps, point.ShrinkMeanOps)
	out.WriteString("gates: all 9 bug classes rediscovered as Disproved; zero unsound; every Refined case passed the numeric differential\n")
	return out.String(), []FuzzPoint{point}, nil
}
