package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/models"
)

// BugCase is one Table 3 entry.
type BugCase struct {
	ID          int
	Framework   string
	Description string
	// Expectation marks the §4.4 cases (bugs 5, 8, 9).
	Expectation bool
	Build       func() (*models.Built, error)
}

// BugCases returns the nine reproduced bugs of §6.2 / Table 3.
func BugCases() []BugCase {
	return []BugCase{
		{ID: 1, Framework: "ByteDance", Description: "Incorrect offset in RoPE with SP",
			Build: func() (*models.Built, error) {
				return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug1RoPEOffset})
			}},
		{ID: 2, Framework: "ByteDance", Description: "Incorrect scaling for auxiliary loss with TP",
			Build: func() (*models.Built, error) {
				return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug2AuxLossScale})
			}},
		{ID: 3, Framework: "ByteDance", Description: "Mismatched padding and slicing in data processing",
			Build: func() (*models.Built, error) {
				return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug3PadSlice})
			}},
		{ID: 4, Framework: "ByteDance", Description: "Incompatible configurations for model components",
			Build: func() (*models.Built, error) {
				return models.SeedMoE(models.Options{TP: 2, Bug: models.Bug4ShardedExperts})
			}},
		{ID: 5, Framework: "ByteDance", Description: "Missing aggregation for a layernorm weight",
			Expectation: true,
			Build: func() (*models.Built, error) {
				return models.GradSync(models.ModuleLayerNorm, 2, false)
			}},
		{ID: 6, Framework: "HF transformers", Description: "Wrong scaling in gradient accumulation",
			Build: func() (*models.Built, error) {
				return models.Regression(models.Options{GradAccum: 2, Bug: models.Bug6GradAccumScale})
			}},
		{ID: 7, Framework: "Megatron-LM", Description: "Missing all-reduce in parallel linear layer",
			Build: func() (*models.Built, error) {
				return models.GPT(models.Options{TP: 2, Bug: models.Bug7MissingAllReduce})
			}},
		{ID: 8, Framework: "Megatron-LM", Description: "Missing all-reduce in optimizer for MoE router (TP+SP)",
			Expectation: true,
			Build: func() (*models.Built, error) {
				return models.GradSync(models.ModuleMoERouter, 2, false)
			}},
		{ID: 9, Framework: "TransformerEngine", Description: "Missing all-reduce in optimizer for layernorm (SP)",
			Expectation: true,
			Build: func() (*models.Built, error) {
				return models.GradSync(models.ModuleTELayerNorm, 2, false)
			}},
	}
}

// BugOutcome records one bug run.
type BugOutcome struct {
	Case      BugCase
	Detected  bool
	Localized string // the operator label ENTANGLE reported
	Duration  time.Duration
	Err       error
}

// RunBug checks one bug case: refinement for ordinary bugs,
// refinement + expectation for the §4.4 cases.
func RunBug(c BugCase) BugOutcome {
	out := BugOutcome{Case: c}
	b, err := c.Build()
	if err != nil {
		out.Err = err
		return out
	}
	checker := core.NewChecker(core.Options{})
	start := time.Now()
	if c.Expectation {
		err = checker.CheckExpectation(b.Gs, b.Gd, b.Ri,
			core.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
		out.Duration = time.Since(start)
		var ee *core.ExpectationError
		if errors.As(err, &ee) {
			out.Detected = true
			out.Localized = "user expectation on " + b.ExpectFs.String()
		} else if err != nil {
			out.Err = err
		}
		return out
	}
	_, err = checker.Check(b.Gs, b.Gd, b.Ri)
	out.Duration = time.Since(start)
	var re *core.RefinementError
	if errors.As(err, &re) {
		out.Detected = true
		out.Localized = re.Op.Label
	} else if err != nil {
		out.Err = err
	}
	return out
}

// Table3 runs the full bug suite and renders the summary table.
func Table3() (string, []BugOutcome, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Table 3: reproduced bugs (detection + localization)")
	fmt.Fprintf(&out, "%-3s %-18s %-55s %-9s %s\n", "id", "framework", "description", "detected", "localized at")
	var outcomes []BugOutcome
	for _, c := range BugCases() {
		o := RunBug(c)
		outcomes = append(outcomes, o)
		if o.Err != nil {
			return "", nil, fmt.Errorf("bug %d: %v", c.ID, o.Err)
		}
		fmt.Fprintf(&out, "%-3d %-18s %-55s %-9v %s\n",
			c.ID, c.Framework, c.Description, o.Detected, o.Localized)
	}
	return out.String(), outcomes, nil
}

// Ablation compares the frontier-restricted exploration (§4.3.1)
// against folding the whole G_d into every per-operator e-graph, on
// the GPT workload — the design choice DESIGN.md calls out.
func Ablation() (string, error) {
	build := func() (*models.Built, error) {
		return models.GPT(models.Options{TP: 2, SP: true})
	}
	var out strings.Builder
	fmt.Fprintln(&out, "Ablation: §4.3.1 frontier-restricted G_d exploration (GPT, TP+SP, degree 2)")
	for _, disable := range []bool{false, true} {
		b, err := build()
		if err != nil {
			return "", err
		}
		checker := core.NewChecker(core.Options{DisableFrontier: disable})
		start := time.Now()
		if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
			return "", err
		}
		mode := "frontier (Listing 3)"
		if disable {
			mode = "whole-graph folding"
		}
		fmt.Fprintf(&out, "  %-24s %12s\n", mode, time.Since(start).Round(time.Millisecond))
	}
	return out.String(), nil
}
