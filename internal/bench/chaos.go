package bench

import (
	"fmt"
	"strings"

	"entangle/internal/core"
	"entangle/internal/faultinject"
	"entangle/internal/lemmas"
	"entangle/internal/models"
)

// chaosCase is one cell of the chaos matrix: a model under one
// deterministic fault configuration.
type chaosCase struct {
	name  string
	build func() (*models.Built, error)
	cfg   faultinject.Config
}

// chaosMatrix pairs the evaluation models with seed-driven fault
// configurations. Only panic and budget-starvation faults appear here:
// both are pure functions of the operator label, so the resulting
// failure reports are schedule-independent and the Workers=1 vs
// Workers=8 byte-identity check below is sound. (Slow faults exercise
// OpTimeout, whose verdicts depend on the wall clock; they are covered
// by unit tests, not this determinism matrix.)
func chaosMatrix() []chaosCase {
	builds := []struct {
		name  string
		build func() (*models.Built, error)
	}{
		{"MultiTower-8", func() (*models.Built, error) { return models.MultiTower(8, 2) }},
		{"GPT (TP)", func() (*models.Built, error) { return models.GPT(models.Options{TP: 2}) }},
		{"ByteDance-Fwd", func() (*models.Built, error) { return models.SeedMoE(models.Options{TP: 2}) }},
	}
	cfgs := []faultinject.Config{
		{Seed: 11, PanicRate: 0.15},
		{Seed: 23, StarveRate: 0.25},
		{Seed: 37, PanicRate: 0.1, StarveRate: 0.15},
	}
	var cases []chaosCase
	for _, b := range builds {
		for _, cfg := range cfgs {
			cases = append(cases, chaosCase{name: b.name, build: b.build, cfg: cfg})
		}
	}
	return cases
}

// Chaos runs the fault-injection robustness matrix: every model ×
// fault seed is checked in KeepGoing mode with Workers=1 and Workers=8,
// and the two multi-failure reports are compared byte for byte. It
// demonstrates the pipeline's failure semantics — injected panics
// become EngineFault verdicts instead of crashes or pool deadlocks,
// starved operators become Inconclusive(BudgetExhausted) after
// escalation, downstream cones are skipped, and none of it depends on
// the worker count.
func Chaos() (string, error) {
	reg := lemmas.Default()
	var out strings.Builder
	out.WriteString("Chaos matrix: deterministic fault injection, KeepGoing, workers 1 vs 8\n")
	fmt.Fprintf(&out, "%-14s %5s %6s %7s %5s %5s %4s %7s %6s %5s %10s\n",
		"model", "seed", "panic", "starve", "#ops", "ok", "esc", "incncl", "fault", "skip", "identical")
	for _, c := range chaosMatrix() {
		var renders [2]string
		var reports [2]*core.Report
		for k, workers := range []int{1, 8} {
			b, err := c.build()
			if err != nil {
				return "", err
			}
			inj := faultinject.New(c.cfg)
			checker := core.NewChecker(core.Options{
				Registry:  reg,
				Workers:   workers,
				KeepGoing: true,
				PreOp:     inj.PreOp,
			})
			rep, err := checker.Check(b.Gs, b.Gd, b.Ri)
			if rep == nil {
				return "", fmt.Errorf("chaos %s seed %d workers %d: no report: %v",
					c.name, c.cfg.Seed, workers, err)
			}
			if err == nil && len(rep.Failures) > 0 {
				return "", fmt.Errorf("chaos %s seed %d workers %d: failures without error", c.name, c.cfg.Seed, workers)
			}
			renders[k] = rep.RenderFailures()
			reports[k] = rep
		}
		if renders[0] != renders[1] {
			return "", fmt.Errorf("chaos %s seed %d: workers=1 and workers=8 reports differ\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
				c.name, c.cfg.Seed, renders[0], renders[1])
		}
		counts := map[core.VerdictKind]int{}
		escalated := 0
		for _, v := range reports[0].Verdicts {
			counts[v.Kind]++
			if v.Escalations > 0 {
				escalated++
			}
		}
		fmt.Fprintf(&out, "%-14s %5d %6.2f %7.2f %5d %5d %4d %7d %6d %5d %10s\n",
			c.name, c.cfg.Seed, c.cfg.PanicRate, c.cfg.StarveRate,
			len(reports[0].Verdicts),
			counts[core.VerdictRefined], escalated, counts[core.VerdictInconclusive],
			counts[core.VerdictEngineFault], counts[core.VerdictSkipped],
			"yes")
	}
	out.WriteString(`
Every cell: injected panics surface as engine-fault verdicts (the pool
never crashes or deadlocks), starved budgets either recover through
geometric escalation (esc column) or surface as inconclusive,
downstream cones are skipped, and the rendered multi-failure report is
byte-identical for workers=1 and workers=8 under the same fault seed.
`)
	return out.String(), nil
}
