package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/lemmas"
)

// SaturatePoint is one workload's cold-check hot-path measurement —
// one row of `entangle-bench -exp saturate` and one entry of the
// BENCH_saturate.json trajectory. Every metric is per *cold* check
// (no verdict cache, Workers 1): this is the floor every cache miss
// pays, the quantity ROADMAP item 3 attacks.
type SaturatePoint struct {
	Workload string `json:"workload"`
	Ops      int    `json:"ops"`
	// Checks is how many timed cold checks the averages below cover.
	Checks int     `json:"checks"`
	ColdMS float64 `json:"cold_ms"` // mean wall-clock per cold check
	// ChecksPerSec is the cold-check throughput — the regression-gate
	// metric (-baseline fails on a >20% drop).
	ChecksPerSec float64 `json:"checks_per_sec"`
	// Iterations and Matches are per check: total saturation iterations
	// across all per-operator e-graphs, and total e-matches collected.
	// MatchesPerIter is their ratio — the match-loop work one
	// saturation iteration pays, which dirty-class tracking shrinks.
	Iterations     int     `json:"iterations"`
	Matches        int     `json:"matches"`
	MatchesPerIter float64 `json:"matches_per_iter"`
	// AllocsPerCheck / BytesPerCheck are heap allocation counts and
	// bytes per cold check (runtime.MemStats deltas over the timed
	// runs) — the GC-pressure metric interning and scratch reuse drive
	// down.
	AllocsPerCheck float64 `json:"allocs_per_check"`
	BytesPerCheck  float64 `json:"bytes_per_check"`
}

// saturateWorkloads is the hot-path corpus: the ByteDance stand-ins
// the acceptance gate tracks, plus GPT and Llama-3 (via HLO) for
// breadth. All are checked at parallelism 2 with one layer, matching
// the Figure 3 / BENCH_cache.json configurations.
func saturateWorkloads() []Workload {
	var out []Workload
	keep := map[string]bool{"ByteDance-Fwd": true, "ByteDance-Bwd": true, "GPT": true, "Llama-3": true}
	for _, w := range Fig3Workloads() {
		if keep[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

// Saturate measures the cold-check hot path on the saturation corpus.
func Saturate() (string, []SaturatePoint, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Saturate: cold-check hot path (no cache, workers=1, parallelism 2, 1 layer)")
	fmt.Fprintf(&out, "%-16s %6s %10s %10s %8s %9s %11s %11s\n",
		"model", "#ops", "cold", "checks/s", "iters", "matches", "allocs/chk", "MB/chk")
	var points []SaturatePoint
	for _, w := range saturateWorkloads() {
		p, err := saturatePoint(w, 2, 1)
		if err != nil {
			return "", nil, err
		}
		points = append(points, *p)
		fmt.Fprintf(&out, "%-16s %6d %10s %10.1f %8d %9d %11.0f %11.2f\n",
			p.Workload, p.Ops,
			time.Duration(p.ColdMS*float64(time.Millisecond)).Round(10*time.Microsecond),
			p.ChecksPerSec, p.Iterations, p.Matches, p.AllocsPerCheck,
			p.BytesPerCheck/(1<<20))
	}
	fmt.Fprintln(&out, "(every check is cold: the per-op e-graphs saturate from scratch — the floor under each cache miss)")
	return out.String(), points, nil
}

// saturatePoint times repeated cold checks of one workload. The build
// and (for Llama) the HLO round trip happen once, outside the timed
// region; each timed check re-runs the full wavefront walk with fresh
// per-operator e-graphs.
func saturatePoint(w Workload, parallel, layers int) (*SaturatePoint, error) {
	b, err := w.Build(parallel, layers)
	if err != nil {
		return nil, err
	}
	gs, gd, ri := b.Gs, b.Gd, b.Ri
	if w.ViaHLO {
		gs, gd, ri, err = roundTripHLO(b)
		if err != nil {
			return nil, err
		}
	}
	checker := core.NewChecker(core.Options{Registry: lemmas.Default(), Workers: 1})

	// Warm-up run: page in code paths and steady-state the heap, and
	// capture the per-check saturation stats (deterministic across
	// runs, so one sample suffices).
	warm, err := checker.Check(gs, gd, ri)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", w.Name, err)
	}

	// Time enough checks to cover ~1s of wall clock (min 4), split
	// into batches; the reported per-check time is the median batch.
	// A single long average is hostage to transient machine load, and
	// min-of-batches is hostage to a lucky turbo burst — the median is
	// stable against both, which is what keeps the CI regression gate
	// from tripping on a noisy neighbor.
	n := 4
	if est := warm.Duration; est > 0 {
		if byTime := int(time.Second / est); byTime > n {
			n = byTime
		}
		if n > 200 {
			n = 200
		}
	}
	const batches = 5
	per := n / batches
	if per < 1 {
		per = 1
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	total := 0
	durs := make([]time.Duration, batches)
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < per; i++ {
			if _, err := checker.Check(gs, gd, ri); err != nil {
				return nil, fmt.Errorf("%s: %v", w.Name, err)
			}
		}
		durs[b] = time.Since(start)
		total += per
	}
	n = total
	runtime.ReadMemStats(&after)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	med := durs[batches/2]

	coldMS := float64(med) / float64(per) / float64(time.Millisecond)
	perSec := 0.0
	if med > 0 {
		perSec = float64(per) / med.Seconds()
	}
	iters := warm.Stats.Iterations
	matches := warm.Stats.Matches
	mpi := 0.0
	if iters > 0 {
		mpi = float64(matches) / float64(iters)
	}
	return &SaturatePoint{
		Workload:       w.Name,
		Ops:            gs.OperatorCount() + gd.OperatorCount(),
		Checks:         n,
		ColdMS:         coldMS,
		ChecksPerSec:   perSec,
		Iterations:     iters,
		Matches:        matches,
		MatchesPerIter: mpi,
		AllocsPerCheck: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerCheck:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// CompareSaturate gates CI on cold-throughput regressions: for every
// workload present in both the baseline (the committed trajectory's
// last run) and the current points, the current checks/sec must be at
// least (1 - tolerance) × baseline. It returns a human-readable
// comparison plus the list of violations.
func CompareSaturate(baseline, current []SaturatePoint, tolerance float64) (string, []string) {
	base := map[string]SaturatePoint{}
	for _, p := range baseline {
		base[p.Workload] = p
	}
	var out strings.Builder
	var violations []string
	fmt.Fprintf(&out, "%-16s %12s %12s %8s\n", "model", "base chk/s", "now chk/s", "ratio")
	for _, p := range current {
		b, ok := base[p.Workload]
		if !ok || b.ChecksPerSec <= 0 {
			fmt.Fprintf(&out, "%-16s %12s %12.1f %8s\n", p.Workload, "(none)", p.ChecksPerSec, "-")
			continue
		}
		ratio := p.ChecksPerSec / b.ChecksPerSec
		fmt.Fprintf(&out, "%-16s %12.1f %12.1f %7.2fx\n", p.Workload, b.ChecksPerSec, p.ChecksPerSec, ratio)
		if ratio < 1-tolerance {
			violations = append(violations,
				fmt.Sprintf("%s: cold throughput %.1f checks/s is %.0f%% of baseline %.1f (floor %.0f%%)",
					p.Workload, p.ChecksPerSec, 100*ratio, b.ChecksPerSec, 100*(1-tolerance)))
		}
	}
	return out.String(), violations
}
