// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§6) — Figure 3's end-to-end
// verification times, Figure 4's scalability sweeps, Figure 5's lemma
// statistics, Figure 6's lemma-application heatmap, and Table 3's bug
// suite — as plain-text reports. cmd/entangle-bench and the root
// bench_test.go benchmarks both drive it.
package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"entangle/internal/core"
	"entangle/internal/graph"
	"entangle/internal/hlo"
	"entangle/internal/lemmas"
	"entangle/internal/models"
	"entangle/internal/relation"

	"entangle/internal/expr"
)

// Workload is one verifiable model configuration.
type Workload struct {
	Name     string
	Strategy string // human-readable strategy summary (Table 2)
	Build    func(parallel, layers int) (*models.Built, error)
	// ViaHLO routes both graphs through the HLO text format before
	// checking (the Transformers-NeuronX capture path).
	ViaHLO bool
	// Parallelisms lists the degrees Figure 4 sweeps for this model
	// (nil: only degree 2 is used).
	Parallelisms []int
}

// Fig3Workloads returns the Figure 3 model set (Table 2's open models
// plus the ByteDance stand-ins).
func Fig3Workloads() []Workload {
	return []Workload{
		{
			Name: "ByteDance-Fwd", Strategy: "TP, SP, EP",
			Build: func(p, l int) (*models.Built, error) {
				return models.SeedMoE(models.Options{TP: p, Cfg: models.Config{Layers: l}})
			},
		},
		{
			Name: "ByteDance-Bwd", Strategy: "TP, SP, EP (backward)",
			Build: func(p, l int) (*models.Built, error) {
				return models.SeedMoEBwd(models.Options{TP: p})
			},
		},
		{
			Name: "GPT", Strategy: "TP, SP",
			Build: func(p, l int) (*models.Built, error) {
				return models.GPT(models.Options{TP: p, SP: true, Cfg: models.Config{Layers: l}})
			},
			Parallelisms: []int{2, 4, 6, 8},
		},
		{
			Name: "Qwen2", Strategy: "TP (vLLM fused kernels)",
			Build: func(p, l int) (*models.Built, error) {
				return models.Qwen2(models.Options{TP: p, Cfg: models.Config{Layers: l}})
			},
		},
		{
			Name: "Llama-3", Strategy: "TP (via HLO)",
			Build: func(p, l int) (*models.Built, error) {
				return models.Llama(models.Options{TP: p, Cfg: models.Config{Layers: l}})
			},
			ViaHLO:       true,
			Parallelisms: []int{2, 4, 8}, // 6 cannot partition heads=8
		},
		{
			Name: "Regression", Strategy: "gradient accumulation",
			Build: func(p, l int) (*models.Built, error) {
				return models.Regression(models.Options{GradAccum: p})
			},
		},
	}
}

// Result is one verification run's measurements.
type Result struct {
	Workload    string
	Parallelism int
	Layers      int
	Ops         int // |G_s| + |G_d|
	Duration    time.Duration
	Report      *core.Report
	Registry    *lemmas.Registry
}

// Run verifies one workload configuration sequentially (one checker
// worker) and returns measurements. The figure experiments all use
// this path so their timings stay comparable to the paper's
// single-threaded Rust prototype; RunWorkers measures the wavefront
// scheduler.
func Run(w Workload, parallel, layers int) (*Result, error) {
	return RunWorkers(w, parallel, layers, 1)
}

// RunWorkers is Run with an explicit checker worker count (the
// wavefront scheduler's pool size; 1 = sequential walk).
func RunWorkers(w Workload, parallel, layers, workers int) (*Result, error) {
	b, err := w.Build(parallel, layers)
	if err != nil {
		return nil, err
	}
	gs, gd, ri := b.Gs, b.Gd, b.Ri
	if w.ViaHLO {
		gs, gd, ri, err = roundTripHLO(b)
		if err != nil {
			return nil, err
		}
	}
	reg := lemmas.Default()
	checker := core.NewChecker(core.Options{Registry: reg, Workers: workers})
	start := time.Now()
	report, err := checker.Check(gs, gd, ri)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", w.Name, err)
	}
	return &Result{
		Workload:    w.Name,
		Parallelism: parallel,
		Layers:      layers,
		Ops:         gs.OperatorCount() + gd.OperatorCount(),
		Duration:    time.Since(start),
		Report:      report,
		Registry:    reg,
	}, nil
}

// roundTripHLO prints both graphs to the HLO text format and parses
// them back, re-keying the input relation by tensor name.
func roundTripHLO(b *models.Built) (*graph.Graph, *graph.Graph, *relation.Relation, error) {
	rt := func(g *graph.Graph) (*graph.Graph, error) {
		var buf bytes.Buffer
		if err := hlo.Print(&buf, g); err != nil {
			return nil, err
		}
		return hlo.Parse(&buf)
	}
	gs2, err := rt(b.Gs)
	if err != nil {
		return nil, nil, nil, err
	}
	gd2, err := rt(b.Gd)
	if err != nil {
		return nil, nil, nil, err
	}
	ri2 := relation.New()
	for _, id := range b.Ri.Tensors() {
		oldT := b.Gs.Tensor(id)
		newT, ok := gs2.TensorByName(oldT.Name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("hlo round trip lost G_s tensor %q", oldT.Name)
		}
		for _, m := range b.Ri.Get(id) {
			var fail error
			m2 := m.Map(func(l *expr.Term) *expr.Term {
				if !l.IsLeaf() {
					return l
				}
				gdT, ok := gd2.TensorByName(l.Name)
				if !ok {
					fail = fmt.Errorf("hlo round trip lost G_d tensor %q", l.Name)
					return l
				}
				return relation.GdLeaf(gdT)
			})
			if fail != nil {
				return nil, nil, nil, fail
			}
			ri2.Add(newT.ID, m2)
		}
	}
	return gs2, gd2, ri2, nil
}

// Fig3 verifies every workload at parallelism 2 with one layer and
// renders the end-to-end time table.
func Fig3() (string, []*Result, error) {
	var out strings.Builder
	fmt.Fprintf(&out, "Figure 3: end-to-end verification time (parallelism 2, 1 layer)\n")
	fmt.Fprintf(&out, "%-16s %-26s %10s %12s\n", "model", "strategy", "#ops", "time")
	var results []*Result
	for _, w := range Fig3Workloads() {
		res, err := Run(w, 2, 1)
		if err != nil {
			return "", nil, err
		}
		results = append(results, res)
		fmt.Fprintf(&out, "%-16s %-26s %10d %12s\n", res.Workload, w.Strategy, res.Ops, res.Duration.Round(time.Millisecond))
	}
	return out.String(), results, nil
}

// Fig4 sweeps parallelism degree and layer count for GPT (TP+SP+VP)
// and Llama-3 (TP), the paper's scalability study.
func Fig4() (string, []*Result, error) {
	var out strings.Builder
	var all []*Result
	sweep := func(title string, parallelisms []int, build func(p, l int) (*models.Built, error), viaHLO bool) error {
		fmt.Fprintf(&out, "Figure 4: %s scalability (verification time)\n", title)
		fmt.Fprintf(&out, "%-12s", "par \\ layers")
		for _, l := range []int{1, 2, 3} {
			fmt.Fprintf(&out, " %10d", l)
		}
		fmt.Fprintln(&out)
		for _, p := range parallelisms {
			fmt.Fprintf(&out, "%-12d", p)
			for _, l := range []int{1, 2, 3} {
				res, err := Run(Workload{Name: title, Build: build, ViaHLO: viaHLO}, p, l)
				if err != nil {
					return err
				}
				all = append(all, res)
				fmt.Fprintf(&out, " %10s", res.Duration.Round(time.Millisecond))
			}
			fmt.Fprintln(&out)
		}
		fmt.Fprintln(&out)
		return nil
	}
	if err := sweep("GPT (TP+SP+VP)", []int{2, 4, 6, 8}, func(p, l int) (*models.Built, error) {
		return models.GPT(models.Options{TP: p, SP: true, VP: true, Cfg: models.Config{Layers: l}})
	}, false); err != nil {
		return "", nil, err
	}
	if err := sweep("Llama-3 (TP)", []int{2, 4, 8}, func(p, l int) (*models.Built, error) {
		return models.Llama(models.Options{TP: p, Cfg: models.Config{Layers: l}})
	}, true); err != nil {
		return "", nil, err
	}
	out.WriteString("(Llama-3 has no degree-6 column: heads=8 cannot be evenly partitioned by 6.)\n")
	return out.String(), all, nil
}

// Fig5 reports per-model operator/lemma counts and average lemma
// complexity (5a), and the LOC-per-lemma CDF (5b).
func Fig5() (string, error) {
	var out strings.Builder
	fmt.Fprintln(&out, "Figure 5a: operators, lemmas used, avg lemma complexity")
	fmt.Fprintf(&out, "%-16s %8s %8s %12s\n", "model", "#ops", "#lemmas", "avg cmplx")
	for _, w := range Fig3Workloads() {
		res, err := Run(w, 2, 1)
		if err != nil {
			return "", err
		}
		used := res.Registry.UsedLemmas(res.Report.Stats.Applications)
		total := 0
		for _, l := range used {
			total += l.Complexity
		}
		avg := 0.0
		if len(used) > 0 {
			avg = float64(total) / float64(len(used))
		}
		fmt.Fprintf(&out, "%-16s %8d %8d %12.1f\n", res.Workload, res.Ops, len(used), avg)
	}
	fmt.Fprintln(&out)
	fmt.Fprintln(&out, "Figure 5b: CDF of LOC per lemma (full library)")
	reg := lemmas.Default()
	var locs []int
	for _, l := range reg.All() {
		locs = append(locs, l.LOC)
	}
	sort.Ints(locs)
	for _, q := range []int{10, 25, 50, 75, 90, 100} {
		idx := (q*len(locs) - 1) / 100
		if idx < 0 {
			idx = 0
		}
		fmt.Fprintf(&out, "  p%-3d ≤ %3d LOC\n", q, locs[idx])
	}
	fmt.Fprintf(&out, "  lemmas: %d total, max %d LOC (all < 70 LOC; the paper reports < 40 for most)\n",
		len(locs), locs[len(locs)-1])
	return out.String(), nil
}

// Fig6 renders the lemma-application heatmap: rows are (model,
// parallelism) pairs, columns lemma IDs, cells log₂-bucketed counts.
func Fig6() (string, error) {
	type row struct {
		label  string
		counts map[int]int
	}
	reg := lemmas.Default()
	var rows []row
	add := func(label string, w Workload, p int) error {
		res, err := Run(w, p, 1)
		if err != nil {
			return err
		}
		rows = append(rows, row{label: label, counts: res.Registry.LemmaCounts(res.Report.Stats.Applications)})
		return nil
	}
	gpt := Workload{Name: "GPT", Build: func(p, l int) (*models.Built, error) {
		return models.GPT(models.Options{TP: p, SP: true, Cfg: models.Config{Layers: l}})
	}}
	qwen := Workload{Name: "Qwen2", Build: func(p, l int) (*models.Built, error) {
		return models.Qwen2(models.Options{TP: p, Cfg: models.Config{Layers: l}})
	}}
	llama := Workload{Name: "Llama-3", Build: func(p, l int) (*models.Built, error) {
		return models.Llama(models.Options{TP: p, Cfg: models.Config{Layers: l}})
	}, ViaHLO: true}
	for _, p := range []int{2, 4, 8} {
		if err := add(fmt.Sprintf("GPT(%d)", p), gpt, p); err != nil {
			return "", err
		}
	}
	if err := add("Qwen2(4)", qwen, 4); err != nil {
		return "", err
	}
	if err := add("Llama-3(4)", llama, 4); err != nil {
		return "", err
	}

	var out strings.Builder
	fmt.Fprintln(&out, "Figure 6: lemma applications (log2 buckets: .=0, digits=⌊log2(n)⌋+1)")
	fmt.Fprintf(&out, "%-12s ", "")
	kinds := make([]byte, reg.Len())
	for i, l := range reg.All() {
		kinds[i] = byte(l.Kind)
	}
	for i := 0; i < reg.Len(); i++ {
		fmt.Fprintf(&out, "%d", i%10)
	}
	fmt.Fprintln(&out)
	for _, r := range rows {
		fmt.Fprintf(&out, "%-12s ", r.label)
		for i := 0; i < reg.Len(); i++ {
			n := r.counts[i]
			switch {
			case n == 0:
				out.WriteByte('.')
			default:
				b := 1
				for n > 1 {
					n >>= 1
					b++
				}
				if b > 9 {
					b = 9
				}
				fmt.Fprintf(&out, "%d", b)
			}
		}
		fmt.Fprintln(&out)
	}
	fmt.Fprintf(&out, "%-12s ", "kind")
	out.Write(kinds)
	fmt.Fprintln(&out)
	fmt.Fprintln(&out, "legend: c=clean-op lemma, g=general ATen, v=vLLM fused, h=HLO")
	fmt.Fprintln(&out)
	fmt.Fprintln(&out, "lemma IDs:")
	for _, l := range reg.All() {
		fmt.Fprintf(&out, "  %2d %c %s\n", l.ID, l.Kind, l.Name)
	}
	return out.String(), nil
}
