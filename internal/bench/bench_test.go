package bench

import (
	"fmt"
	"strings"
	"testing"

	"entangle/internal/models"
)

func TestFig3(t *testing.T) {
	txt, results, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(results))
	}
	for _, want := range []string{"GPT", "Qwen2", "Llama-3", "ByteDance-Fwd", "ByteDance-Bwd", "Regression"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("figure 3 output missing %q:\n%s", want, txt)
		}
	}
	t.Log("\n" + txt)
}

func TestTable3AllBugsDetected(t *testing.T) {
	txt, outcomes, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 9 {
		t.Fatalf("want 9 bugs, got %d", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Detected {
			t.Errorf("bug %d (%s) not detected", o.Case.ID, o.Case.Description)
		}
	}
	t.Log("\n" + txt)
}

func TestFig5(t *testing.T) {
	txt, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "Figure 5a") || !strings.Contains(txt, "Figure 5b") {
		t.Fatalf("incomplete fig5 output:\n%s", txt)
	}
	t.Log("\n" + txt)
}

func TestFig6(t *testing.T) {
	txt, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPT(2)", "GPT(8)", "Qwen2(4)", "Llama-3(4)", "kind"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("figure 6 output missing %q", want)
		}
	}
	t.Log("\n" + txt)
}

func TestAblation(t *testing.T) {
	txt, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + txt)
}

func TestExtensionsHarness(t *testing.T) {
	txt, err := Extensions()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DataParallel(2)", "Pipeline(4)", "ContextParallel(2)", "VIOLATED"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("extensions output missing %q:\n%s", want, txt)
		}
	}
	t.Log("\n" + txt)
}

func TestFig4Harness(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep is the long harness run")
	}
	txt, results, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4*3+3*3 {
		t.Fatalf("want %d sweep cells, got %d", 4*3+3*3, len(results))
	}
	if !strings.Contains(txt, "no degree-6 column") {
		t.Fatal("missing the Llama degree-6 note")
	}
	t.Log("\n" + txt)
}

func TestChaosMatrix(t *testing.T) {
	txt, err := Chaos()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MultiTower-8", "GPT (TP)", "ByteDance-Fwd", "identical", "yes"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, txt)
		}
	}
	t.Log("\n" + txt)
}

func TestRunBugBuildErrorSurfaces(t *testing.T) {
	bad := BugCase{ID: 99, Build: func() (*models.Built, error) {
		return nil, errTest
	}}
	if o := RunBug(bad); o.Err == nil || o.Detected {
		t.Fatalf("build error must surface: %+v", o)
	}
}

var errTest = fmt.Errorf("synthetic build failure")
