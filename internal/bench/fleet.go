package bench

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"entangle/internal/cluster/sim"
	"entangle/internal/core"
	"entangle/internal/faultinject"
	"entangle/internal/fingerprint"
	"entangle/internal/lemmas"
	"entangle/internal/models"
	"entangle/internal/vcache"
)

// FleetPoint is one row of `entangle-bench -exp fleet` and one entry of
// the BENCH_fleet.json trajectory. Phase names the measurement:
//
//	single      fault-free check against a plain one-node verdict cache
//	fleet       the same check routed through a 3-node simulated fleet
//	scale-cold  cold check on node 0 of an N-node fleet
//	scale-warm  warm re-check from the last node (the peer-fetch path)
//	chaos       check under seeded drop/delay/corrupt + crash/partition
//
// Every differential and chaos row self-gates on report byte-identity
// with the single-node run, so a recorded point is a verified one.
type FleetPoint struct {
	Workload  string  `json:"workload"`
	Phase     string  `json:"phase"`
	Nodes     int     `json:"nodes"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	WallMS    float64 `json:"wall_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Forwards  int64   `json:"forwards"`
	PeerHits  int64   `json:"peer_hits"`
	Degraded  int64   `json:"degraded"`
	Identical bool    `json:"identical"`
}

// Fleet runs the sharded-fleet experiment: the fault-free differential
// (a 3-node simulated fleet must produce byte-identical reports to a
// single node on the ByteDance workloads at workers 1 and 4), the
// throughput-vs-node-count sweep, and the chaos differential (seeded
// message drop/delay/corruption plus scripted crash, partition, and
// heal — every check must still render the identical report, and no
// verdict committed to any node's disk may be lost across restarts).
// Like -exp diff, it is a correctness gate first and a stopwatch
// second: any divergence fails the run.
func Fleet() (string, []FleetPoint, error) {
	var out strings.Builder
	var points []FleetPoint
	fmt.Fprintln(&out, "Fleet: content-addressed shard fleet vs single node (parallelism 2, 1 layer)")

	// Fault-free differential. The baseline renders are kept for the
	// chaos phase: chaos must reproduce them byte for byte too.
	baseline := map[string]string{}
	fmt.Fprintln(&out, "\nDifferential: 3-node fleet report vs single-node report")
	fmt.Fprintf(&out, "%-14s %7s %9s %9s %8s %9s\n",
		"model", "workers", "single", "fleet", "forwards", "identical")
	for _, w := range Fig3Workloads() {
		if w.Name != "ByteDance-Fwd" && w.Name != "ByteDance-Bwd" {
			continue
		}
		for _, workers := range []int{1, 4} {
			single, fleet, render, err := fleetDifferential(w, workers)
			if err != nil {
				return "", nil, err
			}
			baseline[fmt.Sprintf("%s/%d", w.Name, workers)] = render
			points = append(points, *single, *fleet)
			fmt.Fprintf(&out, "%-14s %7d %9s %9s %8d %9s\n",
				w.Name, workers, msRound(single.WallMS), msRound(fleet.WallMS),
				fleet.Forwards, "yes")
		}
	}

	// Throughput vs node count: the sharded fleet's extra cost is
	// forwarding on the cold pass and peer fetching on the warm one.
	fmt.Fprintln(&out, "\nScale: ByteDance-Fwd, workers 4, cold check on node 0 then warm re-check from the last node")
	fmt.Fprintf(&out, "%-6s %10s %10s %8s %9s %9s\n",
		"nodes", "cold", "warm", "forwards", "peerhits", "ops/s")
	for _, nodes := range []int{1, 2, 3, 5} {
		cold, warm, err := fleetScale(nodes, 4)
		if err != nil {
			return "", nil, err
		}
		points = append(points, *cold, *warm)
		fmt.Fprintf(&out, "%-6d %10s %10s %8d %9d %9.0f\n",
			nodes, msRound(cold.WallMS), msRound(warm.WallMS),
			cold.Forwards, warm.PeerHits, cold.OpsPerSec)
	}

	// Chaos differential: a hostile network and scripted topology events
	// must never change a report, only its wall clock.
	chaosPts, chaosTxt, err := fleetChaos(baseline["ByteDance-Fwd/4"])
	if err != nil {
		return "", nil, err
	}
	points = append(points, chaosPts...)
	out.WriteString(chaosTxt)

	out.WriteString(`
Every fleet and chaos row rendered a byte-identical report to the
single-node run; degraded peer exchanges cost wall clock, never
correctness, and every verdict committed to a node's disk survived
crash/restart byte for byte.
`)
	return out.String(), points, nil
}

// fleetDifferential checks one workload once against a plain one-node
// cache and once through a fault-free 3-node fleet, and fails unless
// the two reports render byte-identically.
func fleetDifferential(w Workload, workers int) (single, fleet *FleetPoint, render string, err error) {
	b, err := w.Build(2, 1)
	if err != nil {
		return nil, nil, "", err
	}
	ops := b.Gs.OperatorCount()

	dir, err := os.MkdirTemp("", "entangle-bench-fleet-")
	if err != nil {
		return nil, nil, "", err
	}
	defer os.RemoveAll(dir)

	vc, err := vcache.Open(vcache.Config{Dir: dir + "/single"})
	if err != nil {
		return nil, nil, "", err
	}
	singleRep, singleD, err := fleetCheck(vc, workers, b)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%s workers=%d single node: %v", w.Name, workers, err)
	}
	render = renderFleetReport(singleRep, b)

	c, err := sim.New(sim.Config{Nodes: 3, Dir: dir + "/fleet"})
	if err != nil {
		return nil, nil, "", err
	}
	fleetRep, fleetD, err := fleetCheck(c.Node(0).Store(), workers, b)
	if err != nil {
		return nil, nil, "", fmt.Errorf("%s workers=%d fleet: %v", w.Name, workers, err)
	}
	if got := renderFleetReport(fleetRep, b); got != render {
		return nil, nil, "", fmt.Errorf("%s workers=%d: 3-node fleet report differs from single node\n--- single ---\n%s--- fleet ---\n%s",
			w.Name, workers, render, got)
	}
	st := c.Node(0).Store().ClusterStats()
	single = &FleetPoint{
		Workload: w.Name, Phase: "single", Nodes: 1, Workers: workers, Ops: ops,
		WallMS: msOf(singleD), OpsPerSec: opsRate(ops, singleD), Identical: true,
	}
	fleet = &FleetPoint{
		Workload: w.Name, Phase: "fleet", Nodes: 3, Workers: workers, Ops: ops,
		WallMS: msOf(fleetD), OpsPerSec: opsRate(ops, fleetD),
		Forwards: st.Forwards, Identical: true,
	}
	return single, fleet, render, nil
}

// fleetScale measures one node count: a cold check on node 0 (local
// compute + forwarding) and a warm re-check from the last node (local
// misses served by peer fetches that lazily warm its shard).
func fleetScale(nodes, workers int) (cold, warm *FleetPoint, err error) {
	b, err := models.SeedMoE(models.Options{TP: 2, Cfg: models.Config{Layers: 1}})
	if err != nil {
		return nil, nil, err
	}
	ops := b.Gs.OperatorCount()

	dir, err := os.MkdirTemp("", "entangle-bench-fleet-scale-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	c, err := sim.New(sim.Config{Nodes: nodes, Dir: dir})
	if err != nil {
		return nil, nil, err
	}

	if _, coldD, err := fleetCheck(c.Node(0).Store(), workers, b); err != nil {
		return nil, nil, fmt.Errorf("scale nodes=%d cold: %v", nodes, err)
	} else {
		st := c.Node(0).Store().ClusterStats()
		cold = &FleetPoint{
			Workload: "ByteDance-Fwd", Phase: "scale-cold", Nodes: nodes, Workers: workers,
			Ops: ops, WallMS: msOf(coldD), OpsPerSec: opsRate(ops, coldD),
			Forwards: st.Forwards, Identical: true,
		}
	}
	reader := c.Node(nodes - 1)
	if _, warmD, err := fleetCheck(reader.Store(), workers, b); err != nil {
		return nil, nil, fmt.Errorf("scale nodes=%d warm: %v", nodes, err)
	} else {
		st := reader.Store().ClusterStats()
		warm = &FleetPoint{
			Workload: "ByteDance-Fwd", Phase: "scale-warm", Nodes: nodes, Workers: workers,
			Ops: ops, WallMS: msOf(warmD), OpsPerSec: opsRate(ops, warmD),
			PeerHits: st.PeerHits, Identical: true,
		}
	}
	return cold, warm, nil
}

// fleetChaos drives the scripted chaos differential on a 3-node fleet
// with a lossy, corrupting, delaying network: four check stages under
// escalating topology hostility, each required to render the exact
// fault-free baseline report, followed by the committed-verdict
// durability sweep across a full crash/restart of every node.
func fleetChaos(baseline string) ([]FleetPoint, string, error) {
	const workers = 4
	b, err := models.SeedMoE(models.Options{TP: 2, Cfg: models.Config{Layers: 1}})
	if err != nil {
		return nil, "", err
	}
	ops := b.Gs.OperatorCount()

	dir, err := os.MkdirTemp("", "entangle-bench-fleet-chaos-")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(dir)
	c, err := sim.New(sim.Config{
		Nodes: 3,
		Dir:   dir,
		Net:   faultinject.NetConfig{Seed: 42, DropRate: 0.15, DelayRate: 0.15, CorruptRate: 0.15},
	})
	if err != nil {
		return nil, "", err
	}

	var out strings.Builder
	fmt.Fprintln(&out, "\nChaos: ByteDance-Fwd, workers 4, 3 nodes, seed 42, drop/delay/corrupt 0.15 each")
	fmt.Fprintf(&out, "%-22s %5s %10s %9s %9s\n", "stage", "node", "wall", "degraded", "identical")

	stages := []struct {
		name string
		prep func() error
		node int
	}{
		// Cold check straight into the hostile network.
		{"cold+faults", nil, 0},
		// The shard owner of ~1/3 of the keys is down: fetches and
		// forwards to it degrade to local cold checks.
		{"owner-down", func() error { c.Crash(1); return nil }, 2},
		// The restarted owner rejoins cold in memory but warm on disk,
		// then checks from inside a minority partition.
		{"partitioned", func() error {
			if err := c.Restart(1); err != nil {
				return err
			}
			c.Partition([]int{0}, []int{1, 2})
			return nil
		}, 1},
		// Healed: the peer-fetch path resumes, still under message
		// faults.
		{"healed", func() error { c.Heal(); return nil }, 2},
	}
	var points []FleetPoint
	for _, s := range stages {
		if s.prep != nil {
			if err := s.prep(); err != nil {
				return nil, "", err
			}
		}
		rep, d, err := fleetCheck(c.Node(s.node).Store(), workers, b)
		if err != nil {
			return nil, "", fmt.Errorf("chaos %s: %v", s.name, err)
		}
		if got := renderFleetReport(rep, b); got != baseline {
			return nil, "", fmt.Errorf("chaos %s: report diverged from the fault-free single-node baseline\n--- baseline ---\n%s--- chaos ---\n%s",
				s.name, baseline, got)
		}
		st := c.Node(s.node).Store().ClusterStats()
		points = append(points, FleetPoint{
			Workload: "ByteDance-Fwd", Phase: "chaos", Nodes: 3, Workers: workers,
			Ops: ops, WallMS: msOf(d), OpsPerSec: opsRate(ops, d),
			Forwards: st.Forwards, PeerHits: st.PeerHits, Degraded: st.Degraded,
			Identical: true,
		})
		fmt.Fprintf(&out, "%-22s %5d %10s %9d %9s\n",
			s.name, s.node, msRound(msOf(d)), st.Degraded, "yes")
	}

	if err := fleetDurability(c); err != nil {
		return nil, "", err
	}
	inj := c.Injected()
	if inj[faultinject.NetDrop] == 0 || inj[faultinject.NetDelay] == 0 || inj[faultinject.NetCorrupt] == 0 {
		return nil, "", fmt.Errorf("chaos injected nothing meaningful: %v", inj)
	}
	fmt.Fprintf(&out, "injected: drop=%d delay=%d corrupt=%d; durability sweep: every committed verdict survived a full-fleet crash/restart\n",
		inj[faultinject.NetDrop], inj[faultinject.NetDelay], inj[faultinject.NetCorrupt])
	return points, out.String(), nil
}

// fleetDurability is the no-committed-verdict-lost gate: it snapshots
// every sentinel verdict committed to each node's disk, crash/restarts
// the whole fleet one node at a time, and requires every snapshot to
// read back byte-identical.
func fleetDurability(c *sim.Cluster) error {
	const sentinels = 64
	for i := 0; i < sentinels; i++ {
		e := &vcache.Entry{
			Verdict: vcache.VerdictRefined,
			Outputs: []vcache.Mapping{{Main: []string{fmt.Sprintf("I%d", i)}}},
		}
		// Forward failures under chaos degrade the Put, never fail it.
		if err := c.Node(i%3).Store().Put(fleetSentinelKey(i), e); err != nil {
			return fmt.Errorf("chaos sentinel put %d: %v", i, err)
		}
	}
	type committed struct {
		node, key int
		data      []byte
	}
	var before []committed
	for i := 0; i < sentinels; i++ {
		k := fleetSentinelKey(i)
		for n := 0; n < 3; n++ {
			e := c.Node(n).Local().Get(k)
			if e == nil {
				continue
			}
			data, err := vcache.EncodeEntry(k, e)
			if err != nil {
				return err
			}
			before = append(before, committed{n, i, data})
		}
	}
	if len(before) < sentinels {
		return fmt.Errorf("durability sweep degenerated: only %d committed copies of %d sentinels", len(before), sentinels)
	}
	for n := 0; n < 3; n++ {
		c.Crash(n)
		if err := c.Restart(n); err != nil {
			return err
		}
	}
	for _, cm := range before {
		k := fleetSentinelKey(cm.key)
		e := c.Node(cm.node).Local().Get(k)
		if e == nil {
			return fmt.Errorf("committed verdict lost: sentinel %d vanished from n%d across crash/restart", cm.key, cm.node)
		}
		data, err := vcache.EncodeEntry(k, e)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, cm.data) {
			return fmt.Errorf("committed verdict mutated: sentinel %d on n%d changed across crash/restart", cm.key, cm.node)
		}
	}
	return nil
}

// fleetCheck runs one full check against the given verdict store and
// fails on any checker error or refinement failure — every fleet
// measurement doubles as a correctness assertion.
func fleetCheck(store core.VerdictStore, workers int, b *models.Built) (*core.Report, time.Duration, error) {
	checker := core.NewChecker(core.Options{Registry: lemmas.Default(), Workers: workers, Cache: store})
	start := time.Now()
	rep, err := checker.Check(b.Gs, b.Gd, b.Ri)
	d := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	if len(rep.Failures) > 0 {
		return nil, 0, fmt.Errorf("unexpected failures:\n%s", rep.RenderFailures())
	}
	return rep, d, nil
}

// renderFleetReport renders the report surface the differentials
// compare byte for byte: the failure report (empty on success) and the
// complete output relation.
func renderFleetReport(rep *core.Report, b *models.Built) string {
	s := rep.RenderFailures()
	if rep.OutputRelation != nil {
		s += rep.OutputRelation.Render(b.Gs)
	}
	return s
}

// fleetSentinelKey derives the i-th durability sentinel's fingerprint;
// a fixed prefix keeps it out of any real verdict's keyspace.
func fleetSentinelKey(i int) fingerprint.Hash {
	var h fingerprint.Hash
	copy(h[:], "bench-fleet-sentinel")
	h[24], h[25], h[26], h[27] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
	return h
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func msRound(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Millisecond).String()
}

func opsRate(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}
