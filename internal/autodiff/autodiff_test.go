package autodiff

import (
	"math/rand"
	"testing"

	"entangle/internal/graph"
	"entangle/internal/numeric"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// numericGrad estimates ∂loss/∂x[i] by central differences on the
// forward graph — ground truth for the appended backward nodes.
func numericGrad(t *testing.T, g *graph.Graph, inputs map[string]*numeric.Dense,
	loss graph.TensorID, wrtName string) *numeric.Dense {
	t.Helper()
	const eps = 1e-6
	base := inputs[wrtName]
	grad := numeric.NewDense(base.Shape...)
	for i := range base.Data {
		run := func(delta float64) float64 {
			mod := map[string]*numeric.Dense{}
			for k, v := range inputs {
				mod[k] = v.Clone()
			}
			mod[wrtName].Data[i] += delta
			vals, err := numeric.EvalGraph(g, mod, nil)
			if err != nil {
				t.Fatal(err)
			}
			return vals[loss].Data[0]
		}
		grad.Data[i] = (run(eps) - run(-eps)) / (2 * eps)
	}
	return grad
}

// mlpForward builds x→matmul→silu→matmul→sqerr(target).
func mlpForward(t *testing.T) (*graph.Graph, graph.TensorID, map[string]graph.TensorID) {
	t.Helper()
	b := graph.NewBuilder("mlp", nil)
	x := b.Input("x", shape.Of(3, 4))
	w1 := b.Input("w1", shape.Of(4, 5))
	w2 := b.Input("w2", shape.Of(5, 4))
	target := b.Input("target", shape.Of(3, 4))
	h := b.MatMul("fc1", x, w1)
	a := b.Unary("act", "silu", h)
	y := b.MatMul("fc2", a, w2)
	loss := b.SquaredError("loss", y, target)
	b.Output(loss)
	g := b.MustBuild()
	ids := map[string]graph.TensorID{"x": x, "w1": w1, "w2": w2, "target": target}
	return g, loss, ids
}

func TestGradientAgainstFiniteDifferences(t *testing.T) {
	g, loss, ids := mlpForward(t)
	bg, grads, err := Gradient(g, loss, []graph.TensorID{ids["w1"], ids["w2"], ids["x"]})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	inputs := map[string]*numeric.Dense{
		"x":      numeric.Rand(rng, 3, 4),
		"w1":     numeric.Rand(rng, 4, 5),
		"w2":     numeric.Rand(rng, 5, 4),
		"target": numeric.Rand(rng, 3, 4),
	}
	bwdInputs := map[string]*numeric.Dense{"loss.out.grad": numeric.FromData([]int{1}, []float64{1})}
	for k, v := range inputs {
		bwdInputs[k] = v
	}
	vals, err := numeric.EvalGraph(bg, bwdInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w1", "w2", "x"} {
		got := vals[grads[ids[name]]]
		want := numericGrad(t, g, inputs, loss, name)
		if !numeric.AllClose(got, want, 1e-4) {
			t.Fatalf("grad %s: max diff %g", name, numeric.MaxAbsDiff(got, want))
		}
	}
}

func TestGradientThroughStructuralOps(t *testing.T) {
	// loss = sqerr(concat(slice(x), pad-free path…)) exercises the
	// concat/slice/scale/sum adjoints.
	b := graph.NewBuilder("g", nil)
	x := b.Input("x", shape.Of(4, 2))
	target := b.Input("target", shape.Of(4, 2))
	top := b.SliceI("top", x, 0, 0, 2)
	bot := b.SliceI("bot", x, 0, 2, 4)
	sc := b.Scale("half", bot, 1, 2)
	cat := b.Concat("cat", sym.Const(0), top, sc)
	loss := b.SquaredError("loss", cat, target)
	b.Output(loss)
	g := b.MustBuild()
	xID := x
	bg, grads, err := Gradient(g, loss, []graph.TensorID{xID})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	inputs := map[string]*numeric.Dense{
		"x":      numeric.Rand(rng, 4, 2),
		"target": numeric.Rand(rng, 4, 2),
	}
	bwdIn := map[string]*numeric.Dense{"loss.out.grad": numeric.FromData([]int{1}, []float64{1})}
	for k, v := range inputs {
		bwdIn[k] = v
	}
	vals, err := numeric.EvalGraph(bg, bwdIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := vals[grads[xID]]
	want := numericGrad(t, g, inputs, loss, "x")
	if !numeric.AllClose(got, want, 1e-4) {
		t.Fatalf("structural grad: max diff %g", numeric.MaxAbsDiff(got, want))
	}
}

func TestGradientThroughCollectives(t *testing.T) {
	// Distributed-style forward: two shards, all-gather, per-shard
	// losses, all-reduce. Gradients of the shard inputs must match the
	// finite differences of the total loss.
	b := graph.NewBuilder("g", nil)
	x0 := b.Input("x0", shape.Of(2, 3))
	x1 := b.Input("x1", shape.Of(2, 3))
	t0 := b.Input("t0", shape.Of(4, 3))
	gathered := b.AllGather("ag", 0, x0, x1)
	l0 := b.SquaredError("l0", gathered[0], t0)
	l1 := b.SquaredError("l1", gathered[1], t0)
	total := b.AllReduce("ar", l0, l1)
	b.Output(total[0])
	g := b.MustBuild()
	loss := total[0]
	bg, grads, err := Gradient(g, loss, []graph.TensorID{x0, x1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	inputs := map[string]*numeric.Dense{
		"x0": numeric.Rand(rng, 2, 3),
		"x1": numeric.Rand(rng, 2, 3),
		"t0": numeric.Rand(rng, 4, 3),
	}
	bwdIn := map[string]*numeric.Dense{"ar.out0.grad": numeric.FromData([]int{1}, []float64{1})}
	for k, v := range inputs {
		bwdIn[k] = v
	}
	vals, err := numeric.EvalGraph(bg, bwdIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x0", "x1"} {
		var id graph.TensorID
		if name == "x0" {
			id = x0
		} else {
			id = x1
		}
		got := vals[grads[id]]
		want := numericGrad(t, g, inputs, loss, name)
		if !numeric.AllClose(got, want, 1e-4) {
			t.Fatalf("collective grad %s: max diff %g", name, numeric.MaxAbsDiff(got, want))
		}
	}
}

func TestGradientBroadcastMul(t *testing.T) {
	// y = w ⊙ x with w [1,H]: dW must reduce-sum over the broadcast dim.
	b := graph.NewBuilder("g", nil)
	x := b.Input("x", shape.Of(4, 3))
	w := b.Input("w", shape.Of(1, 3))
	target := b.Input("target", shape.Of(4, 3))
	y := b.Mul("apply", w, x)
	loss := b.SquaredError("loss", y, target)
	b.Output(loss)
	g := b.MustBuild()
	bg, grads, err := Gradient(g, loss, []graph.TensorID{w})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	inputs := map[string]*numeric.Dense{
		"x":      numeric.Rand(rng, 4, 3),
		"w":      numeric.Rand(rng, 1, 3),
		"target": numeric.Rand(rng, 4, 3),
	}
	bwdIn := map[string]*numeric.Dense{"loss.out.grad": numeric.FromData([]int{1}, []float64{1})}
	for k, v := range inputs {
		bwdIn[k] = v
	}
	vals, err := numeric.EvalGraph(bg, bwdIn, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := vals[grads[w]]
	if got.Shape[0] != 1 || got.Shape[1] != 3 {
		t.Fatalf("dW shape %v", got.Shape)
	}
	want := numericGrad(t, g, inputs, loss, "w")
	if !numeric.AllClose(got, want, 1e-4) {
		t.Fatalf("broadcast grad: max diff %g", numeric.MaxAbsDiff(got, want))
	}
}

func TestGradientErrors(t *testing.T) {
	// Unsupported op on the loss path must error.
	b := graph.NewBuilder("g", nil)
	x := b.Input("x", shape.Of(4, 4))
	w := b.Input("w", shape.Of(4))
	bias := b.Input("bias", shape.Of(4))
	y := b.LayerNorm("ln", x, w, bias)
	t2 := b.Input("t", shape.Of(4, 4))
	loss := b.SquaredError("loss", y, t2)
	b.Output(loss)
	g := b.MustBuild()
	if _, _, err := Gradient(g, loss, []graph.TensorID{x}); err == nil {
		t.Fatal("layernorm has no gradient rule; must error")
	}

	// wrt tensor off the loss path must error.
	g2, lossID, ids := mlpForward(t)
	b2 := graph.NewBuilder("iso", nil)
	_ = b2
	unused := ids["target"] // target influences the loss, use x instead
	_ = unused
	bg, _, err := Gradient(g2, lossID, []graph.TensorID{ids["x"]})
	if err != nil || bg == nil {
		t.Fatalf("valid gradient failed: %v", err)
	}
}
