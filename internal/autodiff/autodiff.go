// Package autodiff extends computation graphs with reverse-mode
// gradient nodes. The paper's ByteDance workload is checked "for both
// the forward and the backward pass" (§6.1); this package produces
// those backward graphs mechanically, for the differentiable operator
// subset the backward workloads use, including the collective kernels
// (so distributed implementations can be differentiated too, the way
// torch.autograd differentiates through communication ops).
package autodiff

import (
	"fmt"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
	"entangle/internal/sym"
)

// Gradient clones g, appends backward nodes computing ∂loss/∂t for
// every t in wrt, marks those gradients (after the existing outputs)
// as graph outputs, and returns the extended graph with the
// wrt→gradient-tensor mapping. The seed ∂loss/∂loss is introduced as a
// new graph input named "<loss>.grad" (TorchDynamo similarly treats
// incoming grads as backward-graph inputs).
func Gradient(g *graph.Graph, loss graph.TensorID, wrt []graph.TensorID) (*graph.Graph, map[graph.TensorID]graph.TensorID, error) {
	bg := g.Clone()
	lossT := bg.Tensor(loss)

	seedName := lossT.Name + ".grad"
	seed, err := addInput(bg, seedName, lossT.Shape.Clone())
	if err != nil {
		return nil, nil, err
	}

	// adjoints accumulates gradient contributions per forward tensor.
	adjoints := map[graph.TensorID][]graph.TensorID{loss: {seed}}

	order, err := bg.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	// Only forward nodes (the clone has no backward nodes yet).
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		dys := make([]graph.TensorID, len(n.Outputs))
		any := false
		for j, out := range n.Outputs {
			dy, ok, err := sumAdjoints(bg, adjoints[out], fmt.Sprintf("%s.grad_acc%d", n.Label, j))
			if err != nil {
				return nil, nil, err
			}
			if ok {
				dys[j] = dy
				any = true
			} else {
				dys[j] = -1
			}
		}
		if !any {
			continue // not on any path to the loss
		}
		if err := backprop(bg, n, dys, adjoints); err != nil {
			return nil, nil, err
		}
	}

	grads := make(map[graph.TensorID]graph.TensorID, len(wrt))
	for _, w := range wrt {
		dw, ok, err := sumAdjoints(bg, adjoints[w], bg.Tensor(w).Name+".grad_total")
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return nil, nil, fmt.Errorf("autodiff: %q does not influence the loss", bg.Tensor(w).Name)
		}
		grads[w] = dw
		bg.Outputs = append(bg.Outputs, dw)
	}
	if err := bg.Validate(); err != nil {
		return nil, nil, err
	}
	return bg, grads, nil
}

// addInput appends a graph input to an already-built graph.
func addInput(g *graph.Graph, name string, sh shape.Shape) (graph.TensorID, error) {
	if _, dup := g.TensorByName(name); dup {
		return 0, fmt.Errorf("autodiff: input %q already exists", name)
	}
	// Reuse Append's tensor plumbing via a direct identity trick is
	// not possible for inputs; construct the tensor by rebuilding.
	id := graph.TensorID(len(g.Tensors))
	t := &graph.Tensor{ID: id, Name: name, Shape: sh, Producer: graph.NoProducer}
	g.Tensors = append(g.Tensors, t)
	g.Inputs = append(g.Inputs, id)
	registerName(g, name, id)
	return id, nil
}

// sumAdjoints combines accumulated contributions into one tensor.
func sumAdjoints(g *graph.Graph, parts []graph.TensorID, label string) (graph.TensorID, bool, error) {
	switch len(parts) {
	case 0:
		return 0, false, nil
	case 1:
		return parts[0], true, nil
	}
	id, err := g.Append(expr.OpSum, label, label+".out", "", nil, parts...)
	if err != nil {
		return 0, false, err
	}
	return id, true, nil
}

func addTo(adjoints map[graph.TensorID][]graph.TensorID, t, grad graph.TensorID) {
	adjoints[t] = append(adjoints[t], grad)
}

// backprop appends the vector-Jacobian product nodes for one forward
// node; dys holds the output adjoints (-1 for unused outputs).
func backprop(g *graph.Graph, n *graph.Node, dys []graph.TensorID, adjoints map[graph.TensorID][]graph.TensorID) error {
	lbl := func(s string) string { return n.Label + ".bwd/" + s }
	app := func(op expr.Op, label, str string, ints []sym.Expr, in ...graph.TensorID) (graph.TensorID, error) {
		return g.Append(op, lbl(label), lbl(label)+".out", str, ints, in...)
	}
	dy := dys[0]

	switch n.Op {
	case expr.OpMatMul:
		// y = a·b → da = dy·bᵀ, db = aᵀ·dy (rank-2 operands).
		a, b := n.Inputs[0], n.Inputs[1]
		z, o := sym.Const(0), sym.Const(1)
		bt, err := app(expr.OpTranspose, "bT", "", []sym.Expr{z, o}, b)
		if err != nil {
			return err
		}
		da, err := app(expr.OpMatMul, "da", "", nil, dy, bt)
		if err != nil {
			return err
		}
		at, err := app(expr.OpTranspose, "aT", "", []sym.Expr{z, o}, a)
		if err != nil {
			return err
		}
		db, err := app(expr.OpMatMul, "db", "", nil, at, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, a, da)
		addTo(adjoints, b, db)

	case expr.OpAdd:
		addTo(adjoints, n.Inputs[0], dy)
		addTo(adjoints, n.Inputs[1], dy)

	case expr.OpSub:
		addTo(adjoints, n.Inputs[0], dy)
		neg, err := app(expr.OpUnary, "neg", "neg", nil, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, n.Inputs[1], neg)

	case expr.OpSum:
		for _, in := range n.Inputs {
			addTo(adjoints, in, dy)
		}

	case expr.OpMul:
		// y = a⊙b with optional size-1 broadcasting: the adjoint of a
		// broadcast operand reduce-sums over the broadcast dims.
		a, b := n.Inputs[0], n.Inputs[1]
		da, err := app(expr.OpMul, "da", "", nil, dy, b)
		if err != nil {
			return err
		}
		da, err = reduceToShape(g, da, g.Tensor(a).Shape, lbl("da_reduce"))
		if err != nil {
			return err
		}
		db, err := app(expr.OpMul, "db", "", nil, dy, a)
		if err != nil {
			return err
		}
		db, err = reduceToShape(g, db, g.Tensor(b).Shape, lbl("db_reduce"))
		if err != nil {
			return err
		}
		addTo(adjoints, a, da)
		addTo(adjoints, b, db)

	case expr.OpUnary:
		deriv := map[string]string{"silu": "dsilu", "gelu": "dgelu", "relu": "drelu", "tanh": "dtanh"}
		dname, ok := deriv[n.Str]
		if !ok {
			return fmt.Errorf("autodiff: unary %q has no derivative kernel", n.Str)
		}
		dfx, err := app(expr.OpUnary, "deriv", dname, nil, n.Inputs[0])
		if err != nil {
			return err
		}
		dx, err := app(expr.OpMul, "dx", "", nil, dy, dfx)
		if err != nil {
			return err
		}
		addTo(adjoints, n.Inputs[0], dx)

	case expr.OpScale:
		dx, err := app(expr.OpScale, "dx", "", n.Ints, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, n.Inputs[0], dx)

	case expr.OpIdentity:
		addTo(adjoints, n.Inputs[0], dy)

	case expr.OpTranspose:
		dx, err := app(expr.OpTranspose, "dx", "", n.Ints, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, n.Inputs[0], dx)

	case expr.OpConcat:
		d := n.Ints[0]
		off := sym.Const(0)
		for i, in := range n.Inputs {
			di, err := dimIndex(d, len(g.Tensor(in).Shape))
			if err != nil {
				return err
			}
			ext := g.Tensor(in).Shape[di]
			dx, err := app(expr.OpSlice, fmt.Sprintf("dx%d", i), "",
				[]sym.Expr{d, off, off.Add(ext)}, dy)
			if err != nil {
				return err
			}
			addTo(adjoints, in, dx)
			off = off.Add(ext)
		}

	case expr.OpSlice:
		d, b, e := n.Ints[0], n.Ints[1], n.Ints[2]
		in := n.Inputs[0]
		di, err := dimIndex(d, len(g.Tensor(in).Shape))
		if err != nil {
			return err
		}
		ext := g.Tensor(in).Shape[di]
		dx, err := app(expr.OpPad, "dx", "", []sym.Expr{d, b, ext.Sub(e)}, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, in, dx)

	case expr.OpPad:
		d, bf := n.Ints[0], n.Ints[1]
		in := n.Inputs[0]
		di, err := dimIndex(d, len(g.Tensor(in).Shape))
		if err != nil {
			return err
		}
		ext := g.Tensor(in).Shape[di]
		dx, err := app(expr.OpSlice, "dx", "", []sym.Expr{d, bf, bf.Add(ext)}, dy)
		if err != nil {
			return err
		}
		addTo(adjoints, in, dx)

	case expr.OpSquaredError:
		// L = Σ(p-t)² → dp = 2·(p-t)·dy (dy is [1], broadcast via a
		// rank-matched reshape), dt = -dp.
		return lossBackprop(g, n, dy, adjoints, 2, 1)

	case expr.OpMSELoss:
		// L = Σ(p-t)²/N → dp = 2/N·(p-t)·dy.
		numel := int64(1)
		for _, d := range g.Tensor(n.Inputs[0]).Shape {
			v, ok := d.IsConst()
			if !ok {
				return fmt.Errorf("autodiff: mse over symbolic extents unsupported")
			}
			numel *= v
		}
		return lossBackprop(g, n, dy, adjoints, 2, numel)

	case expr.OpAllReduce:
		// y_i = Σ_j x_j → dx_j = Σ_i dy_i for every j.
		got := presentGrads(dys)
		if len(got) == 0 {
			return nil
		}
		total, _, err := sumAdjoints(g, got, lbl("dy_total"))
		if err != nil {
			return err
		}
		for _, in := range n.Inputs {
			addTo(adjoints, in, total)
		}

	case expr.OpAllGather:
		// y_i = concat(x, d) → dx_j = Σ_i slice_j(dy_i).
		d := n.Ints[0]
		off := sym.Const(0)
		for j, in := range n.Inputs {
			di, err := dimIndex(d, len(g.Tensor(in).Shape))
			if err != nil {
				return err
			}
			ext := g.Tensor(in).Shape[di]
			var parts []graph.TensorID
			for i, dyI := range dys {
				if dyI < 0 {
					continue
				}
				sl, err := app(expr.OpSlice, fmt.Sprintf("dx%d_from%d", j, i), "",
					[]sym.Expr{d, off, off.Add(ext)}, dyI)
				if err != nil {
					return err
				}
				parts = append(parts, sl)
			}
			if len(parts) > 0 {
				dx, _, err := sumAdjoints(g, parts, lbl(fmt.Sprintf("dx%d", j)))
				if err != nil {
					return err
				}
				addTo(adjoints, in, dx)
			}
			off = off.Add(ext)
		}

	case expr.OpReduceScatter:
		// y_i = slice_i(Σ_j x_j, d) → dx_j = concat_i(dy_i, d).
		for _, dyI := range dys {
			if dyI < 0 {
				return fmt.Errorf("autodiff: reducescatter %q needs all output grads", n.Label)
			}
		}
		dx, err := app(expr.OpConcat, "dx", "", []sym.Expr{n.Ints[0]}, dys...)
		if err != nil {
			return err
		}
		for _, in := range n.Inputs {
			addTo(adjoints, in, dx)
		}

	default:
		return fmt.Errorf("autodiff: no gradient rule for %q (node %q)", n.Op, n.Label)
	}
	return nil
}

func presentGrads(dys []graph.TensorID) []graph.TensorID {
	var out []graph.TensorID
	for _, d := range dys {
		if d >= 0 {
			out = append(out, d)
		}
	}
	return out
}

// lossBackprop handles the two pointwise losses: dpred =
// num/den · (pred-target) ⊙ broadcast(dy).
func lossBackprop(g *graph.Graph, n *graph.Node, dy graph.TensorID,
	adjoints map[graph.TensorID][]graph.TensorID, num, den int64) error {
	lbl := func(s string) string { return n.Label + ".bwd/" + s }
	pred, target := n.Inputs[0], n.Inputs[1]
	diff, err := g.Append(expr.OpSub, lbl("diff"), lbl("diff")+".out", "", nil, pred, target)
	if err != nil {
		return err
	}
	scaled, err := g.Append(expr.OpScale, lbl("scaled"), lbl("scaled")+".out", "",
		[]sym.Expr{sym.Const(num), sym.Const(den)}, diff)
	if err != nil {
		return err
	}
	// Broadcast dy ([1]) against the prediction by reshaping to a
	// rank-matched all-ones shape.
	rank := len(g.Tensor(pred).Shape)
	ones := make([]sym.Expr, rank)
	for i := range ones {
		ones[i] = sym.Const(1)
	}
	dyR, err := g.Append(expr.OpReshape, lbl("dy_reshape"), lbl("dy_reshape")+".out", "", ones, dy)
	if err != nil {
		return err
	}
	dp, err := g.Append(expr.OpMul, lbl("dpred"), lbl("dpred")+".out", "", nil, dyR, scaled)
	if err != nil {
		return err
	}
	dt, err := g.Append(expr.OpUnary, lbl("dtarget"), lbl("dtarget")+".out", "neg", nil, dp)
	if err != nil {
		return err
	}
	addTo(adjoints, pred, dp)
	addTo(adjoints, target, dt)
	return nil
}

// reduceToShape reduce-sums grad over any dimension where want has
// extent 1 but grad does not (undoing broadcasting).
func reduceToShape(g *graph.Graph, grad graph.TensorID, want shape.Shape, label string) (graph.TensorID, error) {
	cur := grad
	for d := 0; d < len(want); d++ {
		wv, wOK := want[d].IsConst()
		gv, gOK := g.Tensor(cur).Shape[d].IsConst()
		if wOK && gOK && wv == 1 && gv != 1 {
			id, err := g.Append(expr.OpReduceSum, fmt.Sprintf("%s/d%d", label, d),
				fmt.Sprintf("%s/d%d.out", label, d), "", []sym.Expr{sym.Const(int64(d))}, cur)
			if err != nil {
				return 0, err
			}
			cur = id
		}
	}
	return cur, nil
}

func dimIndex(d sym.Expr, rank int) (int, error) {
	v, ok := d.IsConst()
	if !ok {
		return 0, fmt.Errorf("autodiff: symbolic dim unsupported")
	}
	if v < 0 {
		v += int64(rank)
	}
	if v < 0 || int(v) >= rank {
		return 0, fmt.Errorf("autodiff: dim %d out of range", v)
	}
	return int(v), nil
}

// registerName exposes graph's private name index via a tiny shim: the
// graph package keeps tensor names unique, so Append-time registration
// must go through it.
func registerName(g *graph.Graph, name string, id graph.TensorID) {
	graph.RegisterTensorName(g, name, id)
}
