// Package relation implements ENTANGLE's relations (§3.2): sets of
// tensor-expression pairs mapping tensors of a sequential model G_s to
// clean expressions over tensors of a distributed implementation G_d.
// The user-provided input relation R_i, the per-operator relations R_v,
// and the final output relation R_o are all values of this type.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"entangle/internal/expr"
	"entangle/internal/graph"
)

// GdOffset separates the two graphs' tensor-leaf ID spaces inside
// expressions: a leaf with TID ≥ GdOffset refers to G_d tensor
// (TID - GdOffset); smaller TIDs refer to G_s tensors.
const GdOffset = 1 << 20

// GdLeaf builds an expression leaf referencing a G_d tensor.
func GdLeaf(t *graph.Tensor) *expr.Term {
	return expr.Tensor(int(t.ID)+GdOffset, t.Name)
}

// GsLeaf builds an expression leaf referencing a G_s tensor.
func GsLeaf(t *graph.Tensor) *expr.Term {
	return expr.Tensor(int(t.ID), t.Name)
}

// IsGd reports whether a leaf TID refers to the G_d space.
func IsGd(tid int) bool { return tid >= GdOffset }

// GdTensorID converts a G_d-space leaf TID back to a graph.TensorID.
func GdTensorID(tid int) graph.TensorID { return graph.TensorID(tid - GdOffset) }

// Relation maps G_s tensor IDs to one or more clean expressions over
// G_d tensors. A tensor may have several mappings (replication, or the
// multiple reconstructions of §4.1's running example); they are kept
// sorted simplest-first, mirroring the paper's pruning rule (§4.3.2).
type Relation struct {
	m    map[graph.TensorID][]*expr.Term
	keys map[graph.TensorID]map[string]bool
}

// New returns an empty relation.
func New() *Relation {
	return &Relation{m: map[graph.TensorID][]*expr.Term{}, keys: map[graph.TensorID]map[string]bool{}}
}

// Add records a mapping for tensor id; duplicates (by structural key)
// are ignored. It reports whether the mapping was new.
func (r *Relation) Add(id graph.TensorID, t *expr.Term) bool {
	if t == nil {
		return false
	}
	k := t.Key()
	if r.keys[id] == nil {
		r.keys[id] = map[string]bool{}
	}
	if r.keys[id][k] {
		return false
	}
	r.keys[id][k] = true
	lst := append(r.m[id], t)
	sort.SliceStable(lst, func(i, j int) bool { return lst[i].Size() < lst[j].Size() })
	r.m[id] = lst
	return true
}

// AddAll records several mappings.
func (r *Relation) AddAll(id graph.TensorID, ts []*expr.Term) {
	for _, t := range ts {
		r.Add(id, t)
	}
}

// Get returns the mappings for tensor id, simplest first.
func (r *Relation) Get(id graph.TensorID) []*expr.Term { return r.m[id] }

// Has reports whether tensor id has at least one mapping.
func (r *Relation) Has(id graph.TensorID) bool { return len(r.m[id]) > 0 }

// Len returns the number of mapped tensors.
func (r *Relation) Len() int { return len(r.m) }

// Tensors returns the mapped tensor IDs in ascending order.
func (r *Relation) Tensors() []graph.TensorID {
	out := make([]graph.TensorID, 0, len(r.m))
	for id := range r.m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Complete reports whether every one of the given tensors is mapped —
// the paper's completeness condition on R_o (§3.2).
func (r *Relation) Complete(outputs []graph.TensorID) bool {
	for _, o := range outputs {
		if !r.Has(o) {
			return false
		}
	}
	return true
}

// GdLeaves returns the distinct G_d tensor IDs referenced by any
// mapping of the given G_s tensors (all mapped tensors when ids is
// nil). This is the T_rel seed of the paper's Listing 3.
func (r *Relation) GdLeaves(ids []graph.TensorID) []graph.TensorID {
	seen := map[graph.TensorID]bool{}
	var out []graph.TensorID
	collect := func(id graph.TensorID) {
		for _, t := range r.m[id] {
			for _, leaf := range t.Leaves() {
				if IsGd(leaf) {
					gd := GdTensorID(leaf)
					if !seen[gd] {
						seen[gd] = true
						out = append(out, gd)
					}
				}
			}
		}
	}
	if ids == nil {
		for id := range r.m {
			collect(id)
		}
	} else {
		for _, id := range ids {
			collect(id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep-enough copy (terms are immutable and shared).
func (r *Relation) Clone() *Relation {
	n := New()
	for id, ts := range r.m {
		for _, t := range ts {
			n.Add(id, t)
		}
	}
	return n
}

// Render formats the relation for humans, resolving G_s tensor names
// through the graph.
func (r *Relation) Render(gs *graph.Graph) string {
	var b strings.Builder
	for _, id := range r.Tensors() {
		name := fmt.Sprintf("t%d", id)
		if int(id) < len(gs.Tensors) {
			name = gs.Tensor(id).Name
		}
		for _, t := range r.m[id] {
			fmt.Fprintf(&b, "  %s = %s\n", name, t)
		}
	}
	return b.String()
}
