// Package relation implements ENTANGLE's relations (§3.2): sets of
// tensor-expression pairs mapping tensors of a sequential model G_s to
// clean expressions over tensors of a distributed implementation G_d.
// The user-provided input relation R_i, the per-operator relations R_v,
// and the final output relation R_o are all values of this type.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"entangle/internal/expr"
	"entangle/internal/graph"
)

// GdOffset separates the two graphs' tensor-leaf ID spaces inside
// expressions: a leaf with TID ≥ GdOffset refers to G_d tensor
// (TID - GdOffset); smaller TIDs refer to G_s tensors.
const GdOffset = 1 << 20

// GdLeaf builds an expression leaf referencing a G_d tensor.
func GdLeaf(t *graph.Tensor) *expr.Term {
	return expr.Tensor(int(t.ID)+GdOffset, t.Name)
}

// GsLeaf builds an expression leaf referencing a G_s tensor.
func GsLeaf(t *graph.Tensor) *expr.Term {
	return expr.Tensor(int(t.ID), t.Name)
}

// IsGd reports whether a leaf TID refers to the G_d space.
func IsGd(tid int) bool { return tid >= GdOffset }

// GdTensorID converts a G_d-space leaf TID back to a graph.TensorID.
func GdTensorID(tid int) graph.TensorID { return graph.TensorID(tid - GdOffset) }

// Relation maps G_s tensor IDs to one or more clean expressions over
// G_d tensors. A tensor may have several mappings (replication, or the
// multiple reconstructions of §4.1's running example); they are kept
// sorted simplest-first, mirroring the paper's pruning rule (§4.3.2).
//
// A Relation is safe for concurrent use: the wavefront scheduler
// (internal/core) has many operator checks reading input mappings and
// recording output mappings against one shared store. Reads return
// copies (copy-on-read), so a slice obtained from Get is never
// re-sorted or appended to by a concurrent Add. Terms themselves are
// immutable and shared freely.
type Relation struct {
	mu   sync.RWMutex
	m    map[graph.TensorID][]*expr.Term
	keys map[graph.TensorID]map[string]bool
}

// New returns an empty relation.
func New() *Relation {
	return &Relation{m: map[graph.TensorID][]*expr.Term{}, keys: map[graph.TensorID]map[string]bool{}}
}

// Add records a mapping for tensor id; duplicates (by structural key)
// are ignored. It reports whether the mapping was new.
func (r *Relation) Add(id graph.TensorID, t *expr.Term) bool {
	if t == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addLocked(id, t)
}

// AddAll records several mappings.
func (r *Relation) AddAll(id graph.TensorID, ts []*expr.Term) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range ts {
		if t != nil {
			r.addLocked(id, t)
		}
	}
}

// addLocked is Add under r.mu. The mapping list stays sorted
// simplest-first with insertion order breaking ties (sort is stable),
// which keeps list order deterministic however callers interleave.
func (r *Relation) addLocked(id graph.TensorID, t *expr.Term) bool {
	k := t.Key()
	if r.keys[id] == nil {
		r.keys[id] = map[string]bool{}
	}
	if r.keys[id][k] {
		return false
	}
	r.keys[id][k] = true
	lst := append(r.m[id], t)
	sort.SliceStable(lst, func(i, j int) bool { return lst[i].Size() < lst[j].Size() })
	r.m[id] = lst
	return true
}

// Get returns the mappings for tensor id, simplest first. The
// returned slice is a copy owned by the caller.
func (r *Relation) Get(id graph.TensorID) []*expr.Term {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lst := r.m[id]
	if len(lst) == 0 {
		return nil
	}
	out := make([]*expr.Term, len(lst))
	copy(out, lst)
	return out
}

// Has reports whether tensor id has at least one mapping.
func (r *Relation) Has(id graph.TensorID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m[id]) > 0
}

// Len returns the number of mapped tensors.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Tensors returns the mapped tensor IDs in ascending order.
func (r *Relation) Tensors() []graph.TensorID {
	r.mu.RLock()
	out := make([]graph.TensorID, 0, len(r.m))
	for id := range r.m {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Complete reports whether every one of the given tensors is mapped —
// the paper's completeness condition on R_o (§3.2).
func (r *Relation) Complete(outputs []graph.TensorID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, o := range outputs {
		if len(r.m[o]) == 0 {
			return false
		}
	}
	return true
}

// GdLeaves returns the distinct G_d tensor IDs referenced by any
// mapping of the given G_s tensors (all mapped tensors when ids is
// nil). This is the T_rel seed of the paper's Listing 3.
func (r *Relation) GdLeaves(ids []graph.TensorID) []graph.TensorID {
	r.mu.RLock()
	seen := map[graph.TensorID]bool{}
	var out []graph.TensorID
	collect := func(id graph.TensorID) {
		for _, t := range r.m[id] {
			for _, leaf := range t.Leaves() {
				if IsGd(leaf) {
					gd := GdTensorID(leaf)
					if !seen[gd] {
						seen[gd] = true
						out = append(out, gd)
					}
				}
			}
		}
	}
	if ids == nil {
		for id := range r.m {
			collect(id)
		}
	} else {
		for _, id := range ids {
			collect(id)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep-enough copy (terms are immutable and shared).
func (r *Relation) Clone() *Relation {
	n := New()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for id, ts := range r.m {
		for _, t := range ts {
			n.addLocked(id, t)
		}
	}
	return n
}

// Render formats the relation for humans, resolving G_s tensor names
// through the graph.
func (r *Relation) Render(gs *graph.Graph) string {
	var b strings.Builder
	for _, id := range r.Tensors() {
		name := fmt.Sprintf("t%d", id)
		if int(id) < len(gs.Tensors) {
			name = gs.Tensor(id).Name
		}
		r.mu.RLock()
		ts := append([]*expr.Term(nil), r.m[id]...)
		r.mu.RUnlock()
		for _, t := range ts {
			fmt.Fprintf(&b, "  %s = %s\n", name, t)
		}
	}
	return b.String()
}
