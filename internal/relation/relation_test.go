package relation

import (
	"strings"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
)

func twoGraphs(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	bs := graph.NewBuilder("gs", nil)
	a := bs.Input("A", shape.Of(4, 4))
	y := bs.Unary("act", "gelu", a)
	bs.Output(y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("gd", nil)
	a0 := bd.Input("A0", shape.Of(2, 4))
	a1 := bd.Input("A1", shape.Of(2, 4))
	y0 := bd.Unary("r0/act", "gelu", a0)
	y1 := bd.Unary("r1/act", "gelu", a1)
	bd.Output(y0, y1)
	return gs, bd.MustBuild()
}

func TestLeafSpaces(t *testing.T) {
	_, gd := twoGraphs(t)
	a0, _ := gd.TensorByName("A0")
	leaf := GdLeaf(a0)
	if !IsGd(leaf.TID) {
		t.Fatal("GdLeaf must land in the G_d space")
	}
	if GdTensorID(leaf.TID) != a0.ID {
		t.Fatal("round trip broken")
	}
	if IsGd(3) {
		t.Fatal("small ids are G_s space")
	}
}

func TestAddDedupAndOrder(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	a1, _ := gd.TensorByName("A1")
	r := New()
	big := expr.ConcatI(0, GdLeaf(a0), GdLeaf(a1))
	if !r.Add(aT.ID, big) {
		t.Fatal("first add should succeed")
	}
	if r.Add(aT.ID, big) {
		t.Fatal("duplicate must be ignored")
	}
	small := GdLeaf(a0)
	r.Add(aT.ID, small)
	got := r.Get(aT.ID)
	if len(got) != 2 || got[0].Size() > got[1].Size() {
		t.Fatalf("mappings must be sorted simplest-first: %v", got)
	}
	if r.Len() != 1 || !r.Has(aT.ID) {
		t.Fatal("bookkeeping wrong")
	}
}

func TestCompleteAndGdLeaves(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	yT, _ := gs.TensorByName("act.out")
	a0, _ := gd.TensorByName("A0")
	a1, _ := gd.TensorByName("A1")
	r := New()
	r.Add(aT.ID, expr.ConcatI(0, GdLeaf(a0), GdLeaf(a1)))
	if r.Complete([]graph.TensorID{aT.ID, yT.ID}) {
		t.Fatal("missing output must make relation incomplete")
	}
	leaves := r.GdLeaves([]graph.TensorID{aT.ID})
	if len(leaves) != 2 || leaves[0] != a0.ID || leaves[1] != a1.ID {
		t.Fatalf("gd leaves %v", leaves)
	}
	if len(r.GdLeaves(nil)) != 2 {
		t.Fatal("nil ids should cover all mapped tensors")
	}
}

func TestCloneIndependence(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	r := New()
	r.Add(aT.ID, GdLeaf(a0))
	c := r.Clone()
	a1, _ := gd.TensorByName("A1")
	c.Add(aT.ID, GdLeaf(a1))
	if len(r.Get(aT.ID)) != 1 || len(c.Get(aT.ID)) != 2 {
		t.Fatal("clone not independent")
	}
}

func TestRender(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	r := New()
	r.Add(aT.ID, GdLeaf(a0))
	out := r.Render(gs)
	if !strings.Contains(out, "A = A0") {
		t.Fatalf("render output %q", out)
	}
}
