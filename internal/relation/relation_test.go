package relation

import (
	"strings"
	"sync"
	"testing"

	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/shape"
)

func twoGraphs(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	bs := graph.NewBuilder("gs", nil)
	a := bs.Input("A", shape.Of(4, 4))
	y := bs.Unary("act", "gelu", a)
	bs.Output(y)
	gs := bs.MustBuild()

	bd := graph.NewBuilder("gd", nil)
	a0 := bd.Input("A0", shape.Of(2, 4))
	a1 := bd.Input("A1", shape.Of(2, 4))
	y0 := bd.Unary("r0/act", "gelu", a0)
	y1 := bd.Unary("r1/act", "gelu", a1)
	bd.Output(y0, y1)
	return gs, bd.MustBuild()
}

func TestLeafSpaces(t *testing.T) {
	_, gd := twoGraphs(t)
	a0, _ := gd.TensorByName("A0")
	leaf := GdLeaf(a0)
	if !IsGd(leaf.TID) {
		t.Fatal("GdLeaf must land in the G_d space")
	}
	if GdTensorID(leaf.TID) != a0.ID {
		t.Fatal("round trip broken")
	}
	if IsGd(3) {
		t.Fatal("small ids are G_s space")
	}
}

func TestAddDedupAndOrder(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	a1, _ := gd.TensorByName("A1")
	r := New()
	big := expr.ConcatI(0, GdLeaf(a0), GdLeaf(a1))
	if !r.Add(aT.ID, big) {
		t.Fatal("first add should succeed")
	}
	if r.Add(aT.ID, big) {
		t.Fatal("duplicate must be ignored")
	}
	small := GdLeaf(a0)
	r.Add(aT.ID, small)
	got := r.Get(aT.ID)
	if len(got) != 2 || got[0].Size() > got[1].Size() {
		t.Fatalf("mappings must be sorted simplest-first: %v", got)
	}
	if r.Len() != 1 || !r.Has(aT.ID) {
		t.Fatal("bookkeeping wrong")
	}
}

func TestCompleteAndGdLeaves(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	yT, _ := gs.TensorByName("act.out")
	a0, _ := gd.TensorByName("A0")
	a1, _ := gd.TensorByName("A1")
	r := New()
	r.Add(aT.ID, expr.ConcatI(0, GdLeaf(a0), GdLeaf(a1)))
	if r.Complete([]graph.TensorID{aT.ID, yT.ID}) {
		t.Fatal("missing output must make relation incomplete")
	}
	leaves := r.GdLeaves([]graph.TensorID{aT.ID})
	if len(leaves) != 2 || leaves[0] != a0.ID || leaves[1] != a1.ID {
		t.Fatalf("gd leaves %v", leaves)
	}
	if len(r.GdLeaves(nil)) != 2 {
		t.Fatal("nil ids should cover all mapped tensors")
	}
}

func TestCloneIndependence(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	r := New()
	r.Add(aT.ID, GdLeaf(a0))
	c := r.Clone()
	a1, _ := gd.TensorByName("A1")
	c.Add(aT.ID, GdLeaf(a1))
	if len(r.Get(aT.ID)) != 1 || len(c.Get(aT.ID)) != 2 {
		t.Fatal("clone not independent")
	}
}

func TestRender(t *testing.T) {
	gs, gd := twoGraphs(t)
	aT, _ := gs.TensorByName("A")
	a0, _ := gd.TensorByName("A0")
	r := New()
	r.Add(aT.ID, GdLeaf(a0))
	out := r.Render(gs)
	if !strings.Contains(out, "A = A0") {
		t.Fatalf("render output %q", out)
	}
}

// TestConcurrentAddGet exercises the relation under the access pattern
// of the wavefront scheduler: many goroutines adding mappings for
// their own tensors while reading others' concurrently. Run with
// -race; it also checks that slices returned by Get are immune to
// later Adds (copy-on-read).
func TestConcurrentAddGet(t *testing.T) {
	r := New()
	base := expr.Tensor(GdOffset+0, "D0")
	r.Add(0, base)
	snapshot := r.Get(0)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := graph.TensorID(w%4 + 1)
				term := expr.ConcatI(0, expr.Tensor(GdOffset+w*1000+i, "x"), base)
				r.Add(id, term)
				r.AddAll(0, []*expr.Term{base}) // duplicate, must be ignored
				_ = r.Get(id)
				_ = r.Has(id)
				_ = r.GdLeaves([]graph.TensorID{id})
				_ = r.Len()
			}
		}(w)
	}
	wg.Wait()

	if len(snapshot) != 1 || !snapshot[0].Equal(base) {
		t.Fatalf("snapshot mutated by concurrent adds: %v", snapshot)
	}
	if got := r.Get(0); len(got) != 1 {
		t.Fatalf("duplicate adds not deduped: %d mappings", len(got))
	}
	for id := 1; id <= 4; id++ {
		if got := len(r.Get(graph.TensorID(id))); got != 400 {
			t.Fatalf("tensor %d: %d mappings, want 400", id, got)
		}
	}
}

// TestGetReturnsCopy pins the copy-on-read contract on the sequential
// path too: sorting inside a later Add must not reorder a slice a
// caller already holds.
func TestGetReturnsCopy(t *testing.T) {
	r := New()
	big := expr.ConcatI(0, expr.Tensor(GdOffset, "a"), expr.Tensor(GdOffset+1, "b"))
	r.Add(7, big)
	held := r.Get(7)
	r.Add(7, expr.Tensor(GdOffset+2, "c")) // smaller, sorts first internally
	if len(held) != 1 || !held[0].Equal(big) {
		t.Fatalf("held slice changed under a later Add: %v", held)
	}
	got := r.Get(7)
	if len(got) != 2 || got[0].Size() > got[1].Size() {
		t.Fatalf("mappings not simplest-first: %v", got)
	}
}
