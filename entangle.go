// Package entangle is the public API of ENTANGLE-Go, a reproduction of
// "It Takes Two to Entangle" (ASPLOS 2026): a static checker that
// proves model refinement — that a distributed ML model implementation
// G_d's outputs can be cleanly reconstructed into the sequential
// specification G_s's outputs — by iterative term rewriting over
// e-graphs.
//
// The typical flow:
//
//	gs := … // sequential computation graph (entangle.NewBuilder)
//	gd := … // distributed implementation   (entangle.NewBuilder)
//	ri := entangle.NewRelation()
//	ri.Add(gsInput, entangle.Concat1(0, shard0, shard1)) // input relation
//
//	report, err := entangle.NewChecker(entangle.CheckerOptions{}).Check(gs, gd, ri)
//	if err != nil {
//	    var re *entangle.RefinementError
//	    if errors.As(err, &re) {
//	        // re.Op names the sequential operator that could not be
//	        // mapped — the bug-localization output of the paper's §6.2.
//	    }
//	}
//	// report.OutputRelation maps every G_s output to clean expressions
//	// over G_d outputs (concat / slice / transpose / sum only).
//
// Graphs can also arrive from the JSON interchange format
// (entangle.ReadGraph) or the HLO-flavoured text format
// (entangle.ParseHLO), mirroring the paper's TorchDynamo and XLA
// capture paths.
package entangle

import (
	"io"

	"entangle/internal/core"
	"entangle/internal/expr"
	"entangle/internal/graph"
	"entangle/internal/hlo"
	"entangle/internal/lemmas"
	"entangle/internal/relation"
	"entangle/internal/shape"
	"entangle/internal/sym"
	"entangle/internal/vcache"
)

// Core graph types.
type (
	// Graph is a computation graph: operators as vertices, tensors as
	// edges, with distinguished inputs and outputs.
	Graph = graph.Graph
	// Builder constructs graphs fluently with shape inference.
	Builder = graph.Builder
	// Tensor is one edge of a computation graph.
	Tensor = graph.Tensor
	// Node is one operator application.
	Node = graph.Node
	// TensorID identifies a tensor within one graph.
	TensorID = graph.TensorID
	// Shape is a symbolic tensor shape.
	Shape = shape.Shape
	// SymExpr is a linear symbolic integer expression.
	SymExpr = sym.Expr
	// SymContext holds assumptions about symbolic scalars.
	SymContext = sym.Context
)

// Checking types.
type (
	// Checker verifies model refinement.
	Checker = core.Checker
	// CheckerOptions tunes the checker; the zero value is the
	// evaluation default.
	CheckerOptions = core.Options
	// Report is a successful check's result.
	Report = core.Report
	// RefinementError localizes a detected bug to a G_s operator.
	RefinementError = core.RefinementError
	// OpVerdict classifies one operator's outcome (Report.Verdicts).
	OpVerdict = core.OpVerdict
	// VerdictKind is the verdict lattice: refined, disproved,
	// inconclusive, engine-fault, skipped.
	VerdictKind = core.VerdictKind
	// InconclusiveReason says which limit stopped an inconclusive check.
	InconclusiveReason = core.InconclusiveReason
	// InconclusiveError reports a check stopped by budget or deadline
	// before refinement could be proved or disproved; it unwraps to the
	// final attempt's *RefinementError when one exists.
	InconclusiveError = core.InconclusiveError
	// EngineFaultError reports a panic recovered during one operator's
	// check, with the operator identity and stack.
	EngineFaultError = core.EngineFaultError
	// Expectation is a §4.4 user expectation on the refinement.
	Expectation = core.Expectation
	// ExpectationError reports a violated user expectation.
	ExpectationError = core.ExpectationError
	// Plan is the checker's decision layer: one disposition per G_s
	// operator, serializable, consumed by the executor (Report.Plan).
	Plan = core.Plan
	// PlanOp is one operator's planned treatment.
	PlanOp = core.PlanOp
	// Disposition is the planner's per-operator decision: check live,
	// replay from cache, skip as provably unchanged, or re-check
	// because an upstream cone changed.
	Disposition = core.Disposition
	// DeltaReport is the outcome of a diff-aware incremental
	// re-verification (Checker.DiffCheck).
	DeltaReport = core.DeltaReport
	// DeltaOp is one re-checked operator's delta entry.
	DeltaOp = core.DeltaOp
	// Relation maps G_s tensors to clean expressions over G_d tensors.
	Relation = relation.Relation
	// Term is a symbolic tensor expression.
	Term = expr.Term
	// LemmaRegistry is the rewrite-lemma library.
	LemmaRegistry = lemmas.Registry
	// VerdictCache is the content-addressed verdict cache consulted via
	// CheckerOptions.Cache: operators whose fingerprint matches a prior
	// run replay the stored verdict instead of re-saturating.
	VerdictCache = vcache.Cache
	// VerdictCacheConfig sizes a VerdictCache (directory, in-memory
	// capacity, shard count).
	VerdictCacheConfig = vcache.Config
	// VerdictStore is the cache interface CheckerOptions.Cache accepts:
	// a single-node *VerdictCache or a fleet-routing cluster cache
	// (internal/cluster) both satisfy it.
	VerdictStore = core.VerdictStore
)

// NewBuilder starts a graph with the given name; ctx may be nil.
func NewBuilder(name string, ctx *SymContext) *Builder { return graph.NewBuilder(name, ctx) }

// NewChecker builds a refinement checker.
func NewChecker(opts CheckerOptions) *Checker { return core.NewChecker(opts) }

// Verdict kinds (see VerdictKind).
const (
	VerdictRefined      = core.VerdictRefined
	VerdictDisproved    = core.VerdictDisproved
	VerdictInconclusive = core.VerdictInconclusive
	VerdictEngineFault  = core.VerdictEngineFault
	VerdictSkipped      = core.VerdictSkipped
)

// Inconclusive reasons (see InconclusiveReason).
const (
	ReasonBudgetExhausted = core.ReasonBudgetExhausted
	ReasonTimeout         = core.ReasonTimeout
)

// Planner dispositions (see Disposition).
const (
	DispCheck           = core.DispCheck
	DispReplayCache     = core.DispReplayCache
	DispSkipUnchanged   = core.DispSkipUnchanged
	DispTaintedUpstream = core.DispTaintedUpstream
)

// DiffPlan compares an edited sequential graph against its predecessor
// and plans the minimal re-check: unchanged-cone operators are skipped
// (their cached verdicts still hold), changed-cone operators are
// re-checked. Checker.DiffCheck executes such a plan end to end.
func DiffPlan(oldGs *Graph, oldRi *Relation, newGs *Graph, newRi *Relation, gd *Graph) (*Plan, error) {
	return core.DiffPlan(oldGs, oldRi, newGs, newRi, gd)
}

// NewRelation returns an empty relation.
func NewRelation() *Relation { return relation.New() }

// DefaultLemmas builds the full lemma library (Figure 6's c/g/v/h
// families).
func DefaultLemmas() *LemmaRegistry { return lemmas.Default() }

// OpenVerdictCache opens (creating if needed) a verdict cache; one
// cache may be shared across checkers and concurrent Check calls.
func OpenVerdictCache(cfg VerdictCacheConfig) (*VerdictCache, error) { return vcache.Open(cfg) }

// GdLeaf references a distributed-graph tensor inside a relation
// expression.
func GdLeaf(t *Tensor) *Term { return relation.GdLeaf(t) }

// GsLeaf references a sequential-graph tensor inside an expectation
// expression.
func GsLeaf(t *Tensor) *Term { return relation.GsLeaf(t) }

// Concat1 builds a clean concat expression along dim.
func Concat1(dim int64, args ...*Term) *Term { return expr.ConcatI(dim, args...) }

// SumOf builds a clean sum expression.
func SumOf(args ...*Term) *Term { return expr.Sum(args...) }

// SliceOf builds a clean slice expression.
func SliceOf(t *Term, dim, begin, end int64) *Term { return expr.SliceI(t, dim, begin, end) }

// ShapeOf builds a constant shape.
func ShapeOf(dims ...int64) Shape { return shape.Of(dims...) }

// Sym returns the symbolic variable with the given name.
func Sym(name string) SymExpr { return sym.Var(sym.Symbol(name)) }

// SymConst returns a constant symbolic expression.
func SymConst(v int64) SymExpr { return sym.Const(v) }

// NewSymContext returns an empty assumption context.
func NewSymContext() *SymContext { return sym.NewContext() }

// ReadGraph decodes a graph from the JSON interchange format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph encodes a graph to the JSON interchange format.
func WriteGraph(w io.Writer, g *Graph) error { return g.Write(w) }

// ParseHLO decodes a graph from the HLO-flavoured text format.
func ParseHLO(r io.Reader) (*Graph, error) { return hlo.Parse(r) }

// PrintHLO encodes a graph in the HLO-flavoured text format.
func PrintHLO(w io.Writer, g *Graph) error { return hlo.Print(w, g) }
