// gpt_tp verifies the Megatron-style GPT workload under tensor +
// sequence + vocabulary parallelism, then validates the emitted
// relation numerically: both graphs run on the same random inputs and
// the relation must reconstruct the sequential logits exactly.
//
//	go run ./examples/gpt_tp [-tp N] [-layers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"entangle"
	"entangle/internal/models"
	"entangle/internal/numeric"
	"entangle/internal/relation"
)

func main() {
	tp := flag.Int("tp", 2, "parallelism degree")
	layers := flag.Int("layers", 1, "transformer layers")
	flag.Parse()

	b, err := models.GPT(models.Options{TP: *tp, SP: true, VP: true,
		Cfg: models.Config{Layers: *layers}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT: |G_s|=%d |G_d|=%d operators (TP=SP=VP degree %d, %d layers)\n",
		b.Gs.OperatorCount(), b.Gd.OperatorCount(), *tp, *layers)

	report, err := entangle.NewChecker(entangle.CheckerOptions{}).Check(b.Gs, b.Gd, b.Ri)
	if err != nil {
		log.Fatalf("refinement failed: %v", err)
	}
	fmt.Printf("refinement verified in %s\n", report.Duration.Round(1e6))
	fmt.Println("output relation:")
	fmt.Print(report.OutputRelation.Render(b.Gs))

	// Differential validation: run both graphs, apply the relation.
	rng := rand.New(rand.NewSource(7))
	gsIn := map[string]*numeric.Dense{}
	for _, in := range b.Gs.Inputs {
		t := b.Gs.Tensor(in)
		dims, _ := t.Shape.Concrete(nil)
		if t.Name == "ids" {
			gsIn[t.Name] = numeric.RandInts(rng, 16, dims...)
		} else {
			gsIn[t.Name] = numeric.Rand(rng, dims...)
		}
	}
	gsVals, err := numeric.EvalGraph(b.Gs, gsIn, nil)
	if err != nil {
		log.Fatal(err)
	}
	gdIn, err := b.Env.SplitInputs(gsIn)
	if err != nil {
		log.Fatal(err)
	}
	gdVals, err := numeric.EvalGraph(b.Gd, gdIn, nil)
	if err != nil {
		log.Fatal(err)
	}
	lookup := func(tid int) (*numeric.Dense, error) {
		return gdVals[relation.GdTensorID(tid)], nil
	}
	for _, o := range b.Gs.Outputs {
		m := report.OutputRelation.Get(o)[0]
		got, err := numeric.EvalTerm(m, nil, lookup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("numeric check %q: max |Δ| = %.2e\n",
			b.Gs.Tensor(o).Name, numeric.MaxAbsDiff(gsVals[o], got))
	}
}
