// Quickstart: the paper's running example (Figures 1 and 2) through
// the public API — build G_s and G_d, provide the clean input relation
// R_i, and let ENTANGLE derive the clean output relation R_o.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"entangle"
)

func main() {
	// Sequential model G_s: C = matmul(A, B); F = matsub(C, E).
	bs := entangle.NewBuilder("Gs", nil)
	A := bs.Input("A", entangle.ShapeOf(4, 8))
	B := bs.Input("B", entangle.ShapeOf(8, 6))
	E := bs.Input("E", entangle.ShapeOf(4, 6))
	C := bs.MatMul("matmul", A, B)
	F := bs.Sub("matsub", C, E)
	bs.Output(F)
	gs, err := bs.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Distributed implementation G_d on 2 ranks: each rank multiplies
	// its blocks, a reduce-scatter combines the partial products into
	// sequence shards, and each rank subtracts its shard of E.
	bd := entangle.NewBuilder("Gd", nil)
	A1 := bd.Input("A1", entangle.ShapeOf(4, 4))
	A2 := bd.Input("A2", entangle.ShapeOf(4, 4))
	B1 := bd.Input("B1", entangle.ShapeOf(4, 6))
	B2 := bd.Input("B2", entangle.ShapeOf(4, 6))
	E0 := bd.Input("E0", entangle.ShapeOf(2, 6))
	E1 := bd.Input("E1", entangle.ShapeOf(2, 6))
	C1 := bd.MatMul("r0/matmul", A1, B1)
	C2 := bd.MatMul("r1/matmul", A2, B2)
	D := bd.ReduceScatter("rs", 0, C1, C2)
	F1 := bd.Sub("r0/matsub", D[0], E0)
	F2 := bd.Sub("r1/matsub", D[1], E1)
	bd.Output(F1, F2)
	gd, err := bd.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Clean input relation R_i: how G_s's inputs were partitioned.
	ri := entangle.NewRelation()
	leaf := func(name string) *entangle.Term {
		t, _ := gd.TensorByName(name)
		return entangle.GdLeaf(t)
	}
	gsID := func(name string) entangle.TensorID {
		t, _ := gs.TensorByName(name)
		return t.ID
	}
	ri.Add(gsID("A"), entangle.Concat1(1, leaf("A1"), leaf("A2")))
	ri.Add(gsID("B"), entangle.Concat1(0, leaf("B1"), leaf("B2")))
	ri.Add(gsID("E"), entangle.Concat1(0, leaf("E0"), leaf("E1")))

	// Check model refinement.
	report, err := entangle.NewChecker(entangle.CheckerOptions{}).Check(gs, gd, ri)
	if err != nil {
		log.Fatalf("refinement failed: %v", err)
	}
	fmt.Printf("refinement verified in %s (%d operators)\n\n",
		report.Duration.Round(1e6), report.OpsProcessed)

	fmt.Println("clean output relation R_o:")
	fmt.Print(report.OutputRelation.Render(gs))

	fmt.Println("\nintermediate mappings found along the way (R):")
	cT, _ := gs.TensorByName("matmul.out")
	for _, m := range report.FullRelation.Get(cT.ID) {
		fmt.Printf("  C = %s\n", m)
	}
}
