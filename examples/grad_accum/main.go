// grad_accum reproduces §6.2's bug 6 (wrong scaling in gradient
// accumulation, huggingface/transformers#14638): microbatch MSE losses
// accumulated without the 1/k factor. The correct implementation
// verifies; the buggy one fails at the loss operator because the only
// reconstruction would need a division — which is not a clean
// operation.
//
//	go run ./examples/grad_accum [-k microbatches]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"entangle"
	"entangle/internal/models"
)

func main() {
	k := flag.Int("k", 2, "microbatch count")
	flag.Parse()
	checker := entangle.NewChecker(entangle.CheckerOptions{})

	fmt.Printf("== correct accumulation (each microbatch loss scaled by 1/%d) ==\n", *k)
	good, err := models.Regression(models.Options{GradAccum: *k})
	if err != nil {
		log.Fatal(err)
	}
	report, err := checker.Check(good.Gs, good.Gd, good.Ri)
	if err != nil {
		log.Fatalf("correct version must verify: %v", err)
	}
	fmt.Print(report.OutputRelation.Render(good.Gs))

	fmt.Println("\n== buggy accumulation (scaling omitted) ==")
	bad, err := models.Regression(models.Options{GradAccum: *k, Bug: models.Bug6GradAccumScale})
	if err != nil {
		log.Fatal(err)
	}
	_, err = checker.Check(bad.Gs, bad.Gd, bad.Ri)
	var re *entangle.RefinementError
	if !errors.As(err, &re) {
		log.Fatalf("buggy version must fail, got %v", err)
	}
	fmt.Printf("ENTANGLE reports: could not map outputs for operator %q —\n", re.Op.Label)
	fmt.Printf("the accumulated loss is %d× the full-batch loss; reconstructing it\n", *k)
	fmt.Println("would require a division, which is not a clean operation (§3.2).")
}
