// bughunt_moe reproduces §6.2's bug 4 (incompatible configurations for
// model components): a sequence-parallel MoE whose expert weights were
// sharded instead of replicated. The example shows how ENTANGLE's
// RefinementError localizes the defect and what the debugging workflow
// in the paper looks like: inspect the failing operator's input
// relations, spot the wrongly partitioned weight, fix, re-verify.
//
//	go run ./examples/bughunt_moe
package main

import (
	"errors"
	"fmt"
	"log"

	"entangle"
	"entangle/internal/models"
)

func main() {
	fmt.Println("== step 1: verify the buggy implementation ==")
	buggy, err := models.SeedMoE(models.Options{TP: 2, Bug: models.Bug4ShardedExperts})
	if err != nil {
		log.Fatal(err)
	}
	checker := entangle.NewChecker(entangle.CheckerOptions{})
	_, err = checker.Check(buggy.Gs, buggy.Gd, buggy.Ri)
	var re *entangle.RefinementError
	if !errors.As(err, &re) {
		log.Fatalf("expected a refinement error, got %v", err)
	}
	fmt.Printf("ENTANGLE reports: could not map outputs for operator %q\n\n", re.Op.Label)
	fmt.Println("input relations at the failing operator (the user inspects these):")
	fmt.Println(re.InputMappings)
	fmt.Println("→ the expert weight maps to concat(shards) — it was sharded, but")
	fmt.Println("  sequence parallelism requires expert weights to be REPLICATED:")
	fmt.Println("  the off-diagonal blocks X_i × W_j (i ≠ j) are never computed.")

	fmt.Println("\n== step 2: fix the configuration and re-verify ==")
	fixed, err := models.SeedMoE(models.Options{TP: 2})
	if err != nil {
		log.Fatal(err)
	}
	report, err := checker.Check(fixed.Gs, fixed.Gd, fixed.Ri)
	if err != nil {
		log.Fatalf("fixed model should verify: %v", err)
	}
	fmt.Printf("refinement verified in %s; output relation:\n", report.Duration.Round(1e6))
	fmt.Print(report.OutputRelation.Render(fixed.Gs))
}
