// expectations demonstrates §4.4's user-expectation checking on the
// "missing all-reduce in the optimizer" family (§6.2 bugs 5, 8, 9).
// These defects do NOT break plain refinement — the per-rank partial
// gradients still sum cleanly to the true gradient — so the user
// instead states the refinement they expect: "each rank's gradient
// output already equals the full gradient". ENTANGLE splices f_s and
// f_d into the graphs and demands the identity mapping.
//
//	go run ./examples/expectations
package main

import (
	"errors"
	"fmt"
	"log"

	"entangle"
	"entangle/internal/models"
)

func main() {
	checker := entangle.NewChecker(entangle.CheckerOptions{})
	cases := []struct {
		bug    int
		module models.GradSyncModule
		what   string
	}{
		{5, models.ModuleLayerNorm, "layernorm weight not registered with the SP-group optimizer (ByteDance)"},
		{8, models.ModuleMoERouter, "MoE router weight under TP+SP (Megatron-LM #599)"},
		{9, models.ModuleTELayerNorm, "TransformerEngine LayerNorm rewrite dropping the SP all-reduce (TE #1528)"},
	}
	for _, c := range cases {
		fmt.Printf("== bug %d: %s ==\n", c.bug, c.what)
		for _, synced := range []bool{true, false} {
			b, err := models.GradSync(c.module, 2, synced)
			if err != nil {
				log.Fatal(err)
			}
			// Plain refinement holds in BOTH variants.
			if _, err := checker.Check(b.Gs, b.Gd, b.Ri); err != nil {
				log.Fatalf("plain refinement should hold: %v", err)
			}
			// The user expectation separates them.
			err = checker.CheckExpectation(b.Gs, b.Gd, b.Ri,
				entangle.Expectation{Fs: b.ExpectFs, Fd: b.ExpectFd})
			label := "with gradient sync"
			if !synced {
				label = "sync omitted   "
			}
			switch {
			case err == nil:
				fmt.Printf("  %s: plain refinement ok, expectation HOLDS\n", label)
			default:
				var ee *entangle.ExpectationError
				if !errors.As(err, &ee) {
					log.Fatalf("unexpected error: %v", err)
				}
				fmt.Printf("  %s: plain refinement ok, expectation VIOLATED → bug found\n", label)
			}
		}
		fmt.Println()
	}
}
