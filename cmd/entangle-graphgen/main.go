// Command entangle-graphgen emits the evaluation models' computation
// graphs and input relations to files, so cmd/entangle can re-verify
// them offline (the artifact workflow of the paper's appendix B):
//
//	entangle-graphgen -model gpt -tp 2 -sp -o /tmp/gpt
//
// writes <o>-seq.json, <o>-dist.json and <o>-relation.json (or .hlo
// graph files with -format hlo).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"entangle"
	"entangle/internal/models"
	"entangle/internal/relation"
)

func main() {
	var (
		model  = flag.String("model", "gpt", "gpt, llama, qwen2, seedmoe, seedmoe-bwd, regression")
		tp     = flag.Int("tp", 2, "tensor-parallel degree")
		sp     = flag.Bool("sp", false, "enable sequence parallelism")
		vp     = flag.Bool("vp", false, "enable vocabulary parallelism")
		layers = flag.Int("layers", 1, "transformer layers")
		bug    = flag.Int("bug", 0, "inject §6.2 bug number (0 = none)")
		format = flag.String("format", "json", "graph format: json or hlo")
		out    = flag.String("o", "model", "output path prefix")
	)
	flag.Parse()

	opt := models.Options{TP: *tp, SP: *sp, VP: *vp, GradAccum: *tp,
		Cfg: models.Config{Layers: *layers}, Bug: bugFlag(*bug)}
	var b *models.Built
	var err error
	switch *model {
	case "gpt":
		b, err = models.GPT(opt)
	case "llama":
		b, err = models.Llama(opt)
	case "qwen2":
		b, err = models.Qwen2(opt)
	case "seedmoe":
		b, err = models.SeedMoE(opt)
	case "seedmoe-bwd":
		b, err = models.SeedMoEBwd(opt)
	case "regression":
		b, err = models.Regression(opt)
	default:
		fatal("unknown model %q", *model)
	}
	if err != nil {
		fatal("%v", err)
	}

	if err := writeGraph(*out+"-seq", b.Gs, *format); err != nil {
		fatal("%v", err)
	}
	if err := writeGraph(*out+"-dist", b.Gd, *format); err != nil {
		fatal("%v", err)
	}
	if err := writeRelation(*out+"-relation.json", b); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s-seq.%s, %s-dist.%s, %s-relation.json (%d + %d operators)\n",
		*out, ext(*format), *out, ext(*format), *out,
		b.Gs.OperatorCount(), b.Gd.OperatorCount())
}

func bugFlag(n int) models.Bug {
	switch n {
	case 0:
		return models.BugNone
	case 1:
		return models.Bug1RoPEOffset
	case 2:
		return models.Bug2AuxLossScale
	case 3:
		return models.Bug3PadSlice
	case 4:
		return models.Bug4ShardedExperts
	case 6:
		return models.Bug6GradAccumScale
	case 7:
		return models.Bug7MissingAllReduce
	}
	fatal("bug %d is not injectable here (bugs 5, 8, 9 are expectation-based; see examples/expectations)", n)
	return models.BugNone
}

func ext(format string) string {
	if format == "hlo" {
		return "hlo"
	}
	return "json"
}

func writeGraph(prefix string, g *entangle.Graph, format string) error {
	f, err := os.Create(prefix + "." + ext(format))
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "hlo" {
		return entangle.PrintHLO(f, g)
	}
	return entangle.WriteGraph(f, g)
}

// writeRelation emits the input relation in cmd/entangle's sidecar
// format: G_s input name → textual clean expressions over G_d names.
func writeRelation(path string, b *models.Built) error {
	raw := map[string][]string{}
	for _, id := range b.Ri.Tensors() {
		name := b.Gs.Tensor(id).Name
		for _, m := range b.Ri.Get(id) {
			raw[name] = append(raw[name], renderForCLI(m))
		}
	}
	data, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// renderForCLI prints a relation term in the grammar exprparse reads
// (function-style slice instead of the bracket display form).
func renderForCLI(t *entangle.Term) string {
	if t.IsLeaf() {
		return t.Name
	}
	switch string(t.Op) {
	case "slice":
		return fmt.Sprintf("slice(%s, %s, %s, %s)",
			renderForCLI(t.Args[0]), t.Ints[0], t.Ints[1], t.Ints[2])
	case "concat":
		s := "concat("
		for _, a := range t.Args {
			s += renderForCLI(a) + ", "
		}
		return s + "dim=" + t.Ints[0].String() + ")"
	case "sum":
		s := "sum("
		for i, a := range t.Args {
			if i > 0 {
				s += ", "
			}
			s += renderForCLI(a)
		}
		return s + ")"
	}
	return t.String()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangle-graphgen: "+format+"\n", args...)
	os.Exit(2)
}

var _ = relation.GdOffset
