// Command entangle checks model refinement between a sequential model
// and a distributed implementation, both supplied as graph files, with
// the clean input relation in a small JSON sidecar:
//
//	entangle -gs seq.json -gd dist.json -rel relation.json
//	entangle -gs seq.hlo -gd dist.hlo -rel relation.json -format hlo
//	entangle -gs seq.json -gd dist.json -rel relation.json \
//	    -timeout 5m -op-timeout 30s -keep-going
//
// -timeout bounds the whole run (Ctrl-C cancels it the same way);
// -op-timeout bounds each operator's check, classifying a stalled
// operator inconclusive instead of aborting; -keep-going reports every
// failing operator (skipping their downstream cones) instead of
// stopping at the first; -budget-escalations retries budget-limited
// operators with geometrically larger saturation budgets; -cache DIR
// keeps a content-addressed verdict cache across runs, so re-checking
// an unchanged (or mostly unchanged) model pair replays stored
// verdicts instead of re-saturating.
//
// With -diff, positional arguments name the old and new sequential
// graphs, and the checker re-verifies incrementally: operators whose
// upstream cone is unchanged replay their verdicts from the cache,
// only the edit's downstream cone is re-saturated, and the delta —
// what changed, what was replayed, which failures are new — is
// printed. The relation file is parsed against each graph in turn, so
// one sidecar serves both as long as the input names survive the edit:
//
//	entangle -diff -gd dist.json -rel relation.json \
//	    -cache /var/cache/entangle old.json new.json
//
// Without -cache the diff uses a run-local in-memory cache: the old
// graph is checked first to populate it, which still demonstrates the
// delta but saves no wall clock; a persistent -cache directory is the
// intended mode.
//
// With -lint, positional arguments name captured graph files, and the
// graph IR lint layer (internal/lint) runs over each instead of a
// refinement check:
//
//	entangle -lint captured.json other.json
//
// The relation file maps sequential input names to clean expressions
// over distributed tensor names, in the textual form the paper uses:
//
//	{"A": ["concat(A1, A2, dim=1)"], "X": ["r0/X", "r1/X"]}
//
// Exit status: 0 when refinement holds (the output relation is printed),
// 1 on a refinement failure (the failing operator is printed — with
// -keep-going, every failing operator), 2 on usage or input errors, 3
// when the check was cancelled by -timeout or an interrupt before
// reaching a verdict.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"entangle"
	"entangle/internal/exprparse"
	"entangle/internal/lint"
)

func main() {
	var (
		gsPath  = flag.String("gs", "", "sequential model graph file")
		gdPath  = flag.String("gd", "", "distributed implementation graph file")
		relPath = flag.String("rel", "", "input relation JSON file")
		format  = flag.String("format", "json", "graph file format: json or hlo")
		verbose = flag.Bool("v", false, "print the full relation, including intermediates")
		expect  = flag.String("expect", "", "optional §4.4 expectation JSON: {\"fs\": <expr over G_s outputs>, \"fd\": <expr over G_d outputs>}")
		workers = flag.Int("workers", 0, "checker worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		timeout = flag.Duration("timeout", 0, "whole-run deadline; an expired check exits 3 (0 = none)")
		opTO    = flag.Duration("op-timeout", 0, "per-operator deadline; an operator exceeding it is inconclusive, not fatal (0 = none)")
		keepGo  = flag.Bool("keep-going", false, "on a per-operator failure, skip its downstream cone and keep checking independent operators; report every failure")
		escal   = flag.Int("budget-escalations", 0, "retries with a 4x larger saturation budget before an operator is declared inconclusive (0 = default of 1, negative = disabled)")
		cache   = flag.String("cache", "", "verdict cache directory: operators whose content-addressed fingerprint matches a prior run replay the stored verdict instead of re-saturating (empty = no cache)")
		doLint  = flag.Bool("lint", false, "lint the given graph files instead of checking refinement")
		doDiff  = flag.Bool("diff", false, "incrementally re-verify: positional args are the old and new G_s; only the edit's downstream cone is re-checked")
		jsonOut = flag.Bool("json", false, "with -lint: emit findings as JSON")
	)
	flag.Parse()
	if *doLint {
		lintGraphs(flag.Args(), *format, *jsonOut)
		return
	}
	opts := entangle.CheckerOptions{
		Workers:           *workers,
		OpTimeout:         *opTO,
		KeepGoing:         *keepGo,
		BudgetEscalations: *escal,
	}
	if *cache != "" {
		vc, err := entangle.OpenVerdictCache(entangle.VerdictCacheConfig{Dir: *cache})
		if err != nil {
			fatal(2, "opening cache: %v", err)
		}
		opts.Cache = vc
	}
	if *doDiff {
		diffGraphs(flag.Args(), *gdPath, *relPath, *format, opts, *timeout, *verbose)
		return
	}
	if *gsPath == "" || *gdPath == "" || *relPath == "" {
		fmt.Fprintln(os.Stderr, "usage: entangle -gs <graph> -gd <graph> -rel <relation.json> [-format json|hlo] [-v]\n       entangle -lint [-json] <graph>...")
		os.Exit(2)
	}

	gs, err := loadGraph(*gsPath, *format)
	if err != nil {
		fatal(2, "loading G_s: %v", err)
	}
	gd, err := loadGraph(*gdPath, *format)
	if err != nil {
		fatal(2, "loading G_d: %v", err)
	}
	ri, err := loadRelation(*relPath, gs, gd)
	if err != nil {
		fatal(2, "loading relation: %v", err)
	}

	checker := entangle.NewChecker(opts)
	if *expect != "" {
		if err := checkExpectation(checker, gs, gd, ri, *expect); err != nil {
			var ee *entangle.ExpectationError
			if errors.As(err, &ee) {
				fmt.Fprintf(os.Stderr, "EXPECTATION VIOLATED\n%v\n", ee)
				os.Exit(1)
			}
			fatal(2, "%v", err)
		}
		fmt.Println("user expectation verified")
		return
	}

	// The run context: Ctrl-C (SIGINT/SIGTERM) and -timeout both cancel
	// it; the checker observes cancellation between saturation
	// iterations, so the process exits promptly either way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	report, err := checker.CheckContext(ctx, gs, gd, ri)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "entangle: check cancelled (%v): %v\n", ctx.Err(), err)
			os.Exit(3)
		}
		if report != nil && len(report.Failures) > 0 {
			// -keep-going: the partial report lists every failing
			// operator (and its skipped cone) in topological order.
			fmt.Fprintf(os.Stderr, "REFINEMENT FAILED (%d operators, %d checked)\n%s",
				len(report.Failures), report.OpsProcessed, report.RenderFailures())
			fmt.Fprintf(os.Stderr, "first failure:\n%v\n", err)
			os.Exit(1)
		}
		// Inconclusive wraps the final attempt's RefinementError, so it
		// must be matched first.
		var ie *entangle.InconclusiveError
		if errors.As(err, &ie) {
			fmt.Fprintf(os.Stderr, "REFINEMENT INCONCLUSIVE\n%v\n", ie)
			os.Exit(1)
		}
		var re *entangle.RefinementError
		if errors.As(err, &re) {
			fmt.Fprintf(os.Stderr, "REFINEMENT FAILED\n%v\n", re)
			os.Exit(1)
		}
		var ef *entangle.EngineFaultError
		if errors.As(err, &ef) {
			fmt.Fprintf(os.Stderr, "ENGINE FAULT\n%v\n", ef)
			os.Exit(2)
		}
		fatal(2, "%v", err)
	}

	fmt.Printf("refinement verified: %q refines %q (%d operators checked in %s)\n",
		gd.Name, gs.Name, report.OpsProcessed, report.Duration.Round(1e6))
	fmt.Println("output relation R_o:")
	fmt.Print(report.OutputRelation.Render(gs))
	if *verbose {
		fmt.Println("full relation (including intermediates):")
		fmt.Print(report.FullRelation.Render(gs))
	}
}

// diffGraphs runs the -diff mode: check the old graph (replaying from
// a warm cache, or populating a fresh one), then incrementally
// re-verify the new graph and print the delta. Exit codes mirror the
// plain check: 0 when the new graph refines, 1 on a refinement
// failure, 2 on input errors, 3 when cancelled.
func diffGraphs(paths []string, gdPath, relPath, format string, opts entangle.CheckerOptions, timeout time.Duration, verbose bool) {
	if len(paths) != 2 || gdPath == "" || relPath == "" {
		fmt.Fprintln(os.Stderr, "usage: entangle -diff -gd <graph> -rel <relation.json> [-cache DIR] <old-gs> <new-gs>")
		os.Exit(2)
	}
	oldGs, err := loadGraph(paths[0], format)
	if err != nil {
		fatal(2, "loading old G_s: %v", err)
	}
	newGs, err := loadGraph(paths[1], format)
	if err != nil {
		fatal(2, "loading new G_s: %v", err)
	}
	gd, err := loadGraph(gdPath, format)
	if err != nil {
		fatal(2, "loading G_d: %v", err)
	}
	oldRi, err := loadRelation(relPath, oldGs, gd)
	if err != nil {
		fatal(2, "loading relation against old G_s: %v", err)
	}
	newRi, err := loadRelation(relPath, newGs, gd)
	if err != nil {
		fatal(2, "loading relation against new G_s: %v", err)
	}
	if opts.Cache == nil {
		vc, err := entangle.OpenVerdictCache(entangle.VerdictCacheConfig{})
		if err != nil {
			fatal(2, "opening in-memory cache: %v", err)
		}
		opts.Cache = vc
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Baseline pass over the old graph: a warm cache replays it, a cold
	// one is populated. Old-graph failures are delta context ("already
	// failing before the edit"), not fatal — KeepGoing caches every
	// independent verdict regardless.
	warm := opts
	warm.KeepGoing = true
	if _, err := entangle.NewChecker(warm).CheckContext(ctx, oldGs, gd, oldRi); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "entangle: diff cancelled (%v): %v\n", ctx.Err(), err)
			os.Exit(3)
		}
		var re *entangle.RefinementError
		var ie *entangle.InconclusiveError
		if !errors.As(err, &re) && !errors.As(err, &ie) {
			fatal(2, "checking old G_s: %v", err)
		}
	}

	delta, err := entangle.NewChecker(opts).DiffCheckContext(ctx, oldGs, newGs, gd, oldRi, newRi)
	if delta == nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "entangle: diff cancelled (%v): %v\n", ctx.Err(), err)
			os.Exit(3)
		}
		fatal(2, "%v", err)
	}
	fmt.Print(delta.Render())
	if verbose {
		fmt.Println("output relation R_o:")
		fmt.Print(delta.Report.OutputRelation.Render(newGs))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "REFINEMENT FAILED (%d operators, %d checked)\n%s",
			len(delta.Report.Failures), delta.Report.OpsProcessed, delta.Report.RenderFailures())
		os.Exit(1)
	}
}

// lintGraphs runs the graph IR lint layer over captured graph files;
// exit 0 when clean, 1 on error-severity findings, 2 on input errors.
func lintGraphs(paths []string, format string, jsonOut bool) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: entangle -lint [-json] [-format json|hlo] <graph>...")
		os.Exit(2)
	}
	var report lint.Report
	for _, path := range paths {
		g, err := loadGraph(path, format)
		if err != nil {
			fatal(2, "loading %s: %v", path, err)
		}
		for _, d := range lint.Graph(g) {
			d.Subject = path + ": " + d.Subject
			report.Add(d)
		}
	}
	if jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(2, "%v", err)
		}
	} else if err := report.WriteText(os.Stdout); err != nil {
		fatal(2, "%v", err)
	}
	if report.Errors() > 0 {
		os.Exit(1)
	}
}

func loadGraph(path, format string) (*entangle.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "json":
		return entangle.ReadGraph(f)
	case "hlo":
		return entangle.ParseHLO(f)
	}
	return nil, fmt.Errorf("unknown format %q", format)
}

func loadRelation(path string, gs, gd *entangle.Graph) (*entangle.Relation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string][]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, err
	}
	return exprparse.ParseRelation(raw, gs, gd)
}

// checkExpectation reads {"fs": "...", "fd": "..."} and runs the §4.4
// check: fs is an expression over G_s tensor names, fd over G_d names.
func checkExpectation(checker *entangle.Checker, gs, gd *entangle.Graph, ri *entangle.Relation, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var raw struct {
		Fs string `json:"fs"`
		Fd string `json:"fd"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	fs, err := exprparse.Parse(strings.TrimSpace(raw.Fs), exprparse.GsLeafFn(gs))
	if err != nil {
		return fmt.Errorf("expectation fs: %v", err)
	}
	fd, err := exprparse.Parse(strings.TrimSpace(raw.Fd), exprparse.GdLeafFn(gd))
	if err != nil {
		return fmt.Errorf("expectation fd: %v", err)
	}
	return checker.CheckExpectation(gs, gd, ri, entangle.Expectation{Fs: fs, Fd: fd})
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangle: "+format+"\n", args...)
	os.Exit(code)
}
