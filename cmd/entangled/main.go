// Command entangled is the long-lived checker daemon: it serves
// refinement checks over HTTP while keeping one warm content-addressed
// verdict cache (and one materialized lemma registry) across requests,
// so repeated checks of unchanged operators replay stored verdicts
// instead of re-saturating.
//
//	entangled -addr :8372 -cache /var/cache/entangle
//
// Endpoints (see internal/server):
//
//	POST /v1/check    {"gs": <graph>, "gd": <graph>, "rel": {...}}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// checks run to completion (bounded by -drain-timeout), and the
// process exits 0. Exit status 2 reports a startup error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entangle"
	"entangle/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8372", "listen address")
		cache   = flag.String("cache", "", "verdict cache directory shared across requests (empty = in-memory cache only)")
		workers = flag.Int("workers", 0, "per-check worker pool size (0 = GOMAXPROCS)")
		conc    = flag.Int("max-concurrent", 0, "simultaneous checks (0 = GOMAXPROCS); further requests queue")
		reqTO   = flag.Duration("request-timeout", 5*time.Minute, "default per-check deadline when the request carries none (0 = none)")
		opTO    = flag.Duration("op-timeout", 0, "per-operator deadline within each check (0 = none)")
		escal   = flag.Int("budget-escalations", 0, "retries with a 4x larger saturation budget before an operator is declared inconclusive (0 = default of 1, negative = disabled)")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight checks")
	)
	flag.Parse()

	// The daemon always runs with a verdict cache — sharing warm
	// verdicts across requests is its reason to exist. -cache adds the
	// on-disk layer so warmth survives restarts.
	vc, err := entangle.OpenVerdictCache(entangle.VerdictCacheConfig{Dir: *cache})
	if err != nil {
		fatal("opening cache: %v", err)
	}

	srv := server.New(server.Config{
		Options: entangle.CheckerOptions{
			Workers:           *workers,
			OpTimeout:         *opTO,
			BudgetEscalations: *escal,
			Cache:             vc,
		},
		MaxConcurrent:  *conc,
		DefaultTimeout: *reqTO,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "entangled: listening on %s (cache %s)\n", *addr, cacheDesc(*cache))

	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}

	// Graceful drain: flip the admission gate first so no new check is
	// admitted — even on connections already open — then stop the
	// listener and let in-flight checks finish. The gate's drain
	// protocol is exhaustively model-checked (entangle-mc -model daemon).
	fmt.Fprintln(os.Stderr, "entangled: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	go func() { _ = srv.Drain(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "entangled: drained")
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangled: "+format+"\n", args...)
	os.Exit(2)
}
