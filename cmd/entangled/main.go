// Command entangled is the long-lived checker daemon: it serves
// refinement checks over HTTP while keeping one warm content-addressed
// verdict cache (and one materialized lemma registry) across requests,
// so repeated checks of unchanged operators replay stored verdicts
// instead of re-saturating.
//
//	entangled -addr :8372 -cache /var/cache/entangle
//
// With -peers, the daemon joins a sharded checker fleet: each verdict
// fingerprint has exactly one owning node (rendezvous hashing over the
// static member list), verdicts are forwarded to and fetched from
// their owners over /v1/peer/verdict, and every fleet failure mode
// degrades to a local cold check — slower, never wrong:
//
//	entangled -addr :8372 -cache /var/a -self a \
//	          -peers a=http://10.0.0.1:8372,b=http://10.0.0.2:8372
//
// Endpoints (see internal/server):
//
//	POST /v1/check    {"gs": <graph>, "gd": <graph>, "rel": {...}}
//	POST /v1/recheck
//	GET|PUT /v1/peer/verdict?key=<hex>   (fleet nodes only)
//	GET  /v1/healthz
//	GET  /v1/stats
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// checks run to completion (bounded by -drain-timeout), and the
// process exits 0. Exit status 2 reports a startup error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entangle"
	"entangle/internal/cluster"
	"entangle/internal/server"
	"entangle/internal/vcache"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8372", "listen address")
		cache   = flag.String("cache", "", "verdict cache directory shared across requests (empty = in-memory cache only)")
		workers = flag.Int("workers", 0, "per-check worker pool size (0 = GOMAXPROCS)")
		conc    = flag.Int("max-concurrent", 0, "simultaneous checks (0 = GOMAXPROCS); further requests queue")
		reqTO   = flag.Duration("request-timeout", 5*time.Minute, "default per-check deadline when the request carries none (0 = none)")
		opTO    = flag.Duration("op-timeout", 0, "per-operator deadline within each check (0 = none)")
		escal   = flag.Int("budget-escalations", 0, "retries with a 4x larger saturation budget before an operator is declared inconclusive (0 = default of 1, negative = disabled)")
		drainTO = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight checks")

		// Transport hardening: every stage of an HTTP exchange gets a
		// deadline so one slow or malicious client can never pin a
		// connection (and its goroutine) forever.
		hdrTO   = flag.Duration("read-header-timeout", 10*time.Second, "deadline for reading a request's headers")
		readTO  = flag.Duration("read-timeout", 2*time.Minute, "deadline for reading a whole request including its body")
		writeTO = flag.Duration("write-timeout", 0, "deadline for writing a response (0 = request-timeout + 1m, or none when request-timeout is 0)")
		idleTO  = flag.Duration("idle-timeout", 2*time.Minute, "how long an idle keep-alive connection is kept open")
		maxBody = flag.Int64("max-body-bytes", 0, "request body cap; oversized requests get 413 (0 = 64 MiB)")

		selfID = flag.String("self", "", "this node's fleet member ID (required with -peers)")
		peers  = flag.String("peers", "", "static fleet member list as id=url,... including this node; enables sharded peer caching")
	)
	flag.Parse()

	// The daemon always runs with a verdict cache — sharing warm
	// verdicts across requests is its reason to exist. -cache adds the
	// on-disk layer so warmth survives restarts.
	vc, err := entangle.OpenVerdictCache(entangle.VerdictCacheConfig{Dir: *cache})
	if err != nil {
		fatal("opening cache: %v", err)
	}

	// In a fleet, the checker consults the cluster-routing store while
	// peers are served the raw local shard directly; single-node daemons
	// use the local cache for both.
	var store entangle.VerdictStore = vc
	var local *vcache.Cache
	var clusterInfo func() any
	var fleet *cluster.Cache
	if *peers != "" {
		if *selfID == "" {
			fatal("-peers requires -self")
		}
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			fatal("%v", err)
		}
		ms, err := cluster.NewMembership(*selfID, members)
		if err != nil {
			fatal("%v", err)
		}
		client := cluster.NewClient(cluster.ClientConfig{Transport: &cluster.HTTPTransport{}})
		fleet, err = cluster.NewCache(cluster.CacheConfig{Membership: ms, Local: vc, Client: client})
		if err != nil {
			fatal("%v", err)
		}
		store, local = fleet, vc
		clusterInfo = func() any {
			return map[string]any{
				"self":    ms.Self().ID,
				"members": len(ms.Members()),
				"cache":   fleet.ClusterStats(),
				"client":  fleet.ClientStats(),
			}
		}
	} else if *selfID != "" {
		fatal("-self requires -peers")
	}

	srv := server.New(server.Config{
		Options: entangle.CheckerOptions{
			Workers:           *workers,
			OpTimeout:         *opTO,
			BudgetEscalations: *escal,
			Cache:             store,
		},
		MaxConcurrent:  *conc,
		DefaultTimeout: *reqTO,
		MaxBodyBytes:   *maxBody,
		Local:          local,
		ClusterInfo:    clusterInfo,
	})
	// The write deadline must outlast the longest admissible check, or
	// the server would cut off a verdict mid-response.
	if *writeTO == 0 && *reqTO > 0 {
		*writeTO = *reqTO + time.Minute
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: *hdrTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "entangled: listening on %s (cache %s%s)\n", *addr, cacheDesc(*cache), fleetDesc(fleet))

	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}

	// Graceful drain: flip the admission gate first so no new check is
	// admitted — even on connections already open — then stop the
	// listener and let in-flight checks finish. Peer traffic stops too:
	// in-flight forwards abort (the verdicts are already safe locally)
	// and peers degrade to their own cold checks. The gate's drain
	// protocol is exhaustively model-checked (entangle-mc -model daemon).
	fmt.Fprintln(os.Stderr, "entangled: draining")
	if fleet != nil {
		fleet.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	go func() { _ = srv.Drain(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "entangled: drained")
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}

func fleetDesc(fleet *cluster.Cache) string {
	if fleet == nil {
		return ""
	}
	ms := fleet.Membership()
	return fmt.Sprintf(", fleet %s of %d nodes", ms.Self().ID, len(ms.Members()))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangled: "+format+"\n", args...)
	os.Exit(2)
}
