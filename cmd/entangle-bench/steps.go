package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"entangle/internal/bench"
)

func runFig3() (string, error) {
	txt, _, err := bench.Fig3()
	return txt, err
}

func runFig4() (string, error) {
	txt, _, err := bench.Fig4()
	return txt, err
}

func runFig5() (string, error) { return bench.Fig5() }

func runFig6() (string, error) { return bench.Fig6() }

func runBugs() (string, error) {
	txt, _, err := bench.Table3()
	return txt, err
}

func runAblation() (string, error) { return bench.Ablation() }

func runParallel() (string, error) { return bench.Parallel() }

func runChaos() (string, error) { return bench.Chaos() }

func runCache() (string, error) {
	txt, points, err := bench.Cache()
	if err != nil {
		return "", err
	}
	if *jsonOut != "" {
		if err := appendTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, err
}

// cacheRun is one recorded `-exp cache` invocation in the trajectory
// file: BENCH_cache.json holds an array of these, one per run, so the
// series tracks cache performance across checker versions.
type cacheRun struct {
	Timestamp string             `json:"timestamp"`
	Go        string             `json:"go"`
	Points    []bench.CachePoint `json:"points"`
}

func appendTrajectory(path string, points []bench.CachePoint) error {
	var runs []cacheRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, cacheRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runExtensions() (string, error) { return bench.Extensions() }

// fleetRun is one recorded `-exp fleet` invocation in the trajectory
// file: BENCH_fleet.json holds an array of these, one per run, so the
// series tracks sharded-fleet overhead and chaos resilience across
// versions. The experiment self-gates on report byte-identity with the
// single-node run and on the crash/restart durability sweep, so every
// recorded point is a verified one.
type fleetRun struct {
	Timestamp string             `json:"timestamp"`
	Go        string             `json:"go"`
	Points    []bench.FleetPoint `json:"points"`
}

func runFleet() (string, error) {
	txt, points, err := bench.Fleet()
	if err != nil {
		return "", err
	}
	if *jsonOut != "" {
		if err := appendFleetTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, nil
}

func appendFleetTrajectory(path string, points []bench.FleetPoint) error {
	var runs []fleetRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, fleetRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffRun is one recorded `-exp diff` invocation in the trajectory
// file: BENCH_diff.json holds an array of these, one per run, so the
// series tracks incremental re-verification speedups across checker
// versions. The experiment self-gates on correctness (exact-cone
// re-check, full replay of unchanged operators), so every recorded
// point is a verified one.
type diffRun struct {
	Timestamp string            `json:"timestamp"`
	Go        string            `json:"go"`
	Points    []bench.DiffPoint `json:"points"`
}

func runDiff() (string, error) {
	txt, points, err := bench.Diff()
	if err != nil {
		return "", err
	}
	if *jsonOut != "" {
		if err := appendDiffTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, nil
}

func appendDiffTrajectory(path string, points []bench.DiffPoint) error {
	var runs []diffRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, diffRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fuzzRun is one recorded `-exp fuzz` invocation in the trajectory
// file: BENCH_fuzz.json holds an array of these, one per run, so the
// series tracks fuzzer throughput, unique lemma gaps, and shrink
// quality across checker versions. The experiment self-gates (all
// nine bug classes rediscovered as Disproved, zero unsound cases,
// every Refined case numerically validated), so every recorded point
// is a verified one.
type fuzzRun struct {
	Timestamp string            `json:"timestamp"`
	Go        string            `json:"go"`
	Points    []bench.FuzzPoint `json:"points"`
}

func runFuzz() (string, error) {
	txt, points, err := bench.Fuzz()
	if err != nil {
		return "", err
	}
	if *jsonOut != "" {
		if err := appendFuzzTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, nil
}

func appendFuzzTrajectory(path string, points []bench.FuzzPoint) error {
	var runs []fuzzRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, fuzzRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// saturateRun is one recorded `-exp saturate` invocation in the
// trajectory file: BENCH_saturate.json holds an array of these, one
// per run, so the series tracks cold-check hot-path performance across
// engine versions — and `-baseline` gates CI on regressions against
// the last committed run.
type saturateRun struct {
	Timestamp string                `json:"timestamp"`
	Go        string                `json:"go"`
	Points    []bench.SaturatePoint `json:"points"`
}

func runSaturate() (string, error) {
	txt, points, err := bench.Saturate()
	if err != nil {
		return "", err
	}
	if *baseline != "" {
		base, err := lastSaturateRun(*baseline)
		if err != nil {
			return "", err
		}
		// A measurement that regresses is retried before the gate
		// fails: a genuine regression reproduces on every attempt,
		// while a transient slow period on a shared CI runner does
		// not. Only a run that violates the tolerance on all attempts
		// fails the gate.
		const gateAttempts = 3
		var cmp string
		var violations []string
		for attempt := 1; ; attempt++ {
			cmp, violations = bench.CompareSaturate(base.Points, points, *tolerance)
			if len(violations) == 0 || attempt == gateAttempts {
				break
			}
			fmt.Fprintf(os.Stderr, "entangle-bench: saturate: attempt %d/%d regressed, re-measuring\n",
				attempt, gateAttempts)
			txt, points, err = bench.Saturate()
			if err != nil {
				return "", err
			}
		}
		txt += fmt.Sprintf("baseline: %s (%s, go %s)\n%s", *baseline, base.Timestamp, base.Go, cmp)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "entangle-bench: saturate: REGRESSION: %s\n", v)
			}
			return "", fmt.Errorf("cold-check throughput regressed beyond %.0f%% on %d workload(s)",
				*tolerance*100, len(violations))
		}
		txt += "regression gate: OK\n"
	}
	if *jsonOut != "" {
		if err := appendSaturateTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, nil
}

func lastSaturateRun(path string) (*saturateRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var runs []saturateRun
	if err := json.Unmarshal(data, &runs); err != nil {
		return nil, fmt.Errorf("%s: trajectory unreadable: %v", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: trajectory empty", path)
	}
	return &runs[len(runs)-1], nil
}

func appendSaturateTrajectory(path string, points []bench.SaturatePoint) error {
	var runs []saturateRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, saturateRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
