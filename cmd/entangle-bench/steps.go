package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"entangle/internal/bench"
)

func runFig3() (string, error) {
	txt, _, err := bench.Fig3()
	return txt, err
}

func runFig4() (string, error) {
	txt, _, err := bench.Fig4()
	return txt, err
}

func runFig5() (string, error) { return bench.Fig5() }

func runFig6() (string, error) { return bench.Fig6() }

func runBugs() (string, error) {
	txt, _, err := bench.Table3()
	return txt, err
}

func runAblation() (string, error) { return bench.Ablation() }

func runParallel() (string, error) { return bench.Parallel() }

func runChaos() (string, error) { return bench.Chaos() }

func runCache() (string, error) {
	txt, points, err := bench.Cache()
	if err != nil {
		return "", err
	}
	if *jsonOut != "" {
		if err := appendTrajectory(*jsonOut, points); err != nil {
			return "", err
		}
		txt += fmt.Sprintf("appended %d data points to %s\n", len(points), *jsonOut)
	}
	return txt, err
}

// cacheRun is one recorded `-exp cache` invocation in the trajectory
// file: BENCH_cache.json holds an array of these, one per run, so the
// series tracks cache performance across checker versions.
type cacheRun struct {
	Timestamp string             `json:"timestamp"`
	Go        string             `json:"go"`
	Points    []bench.CachePoint `json:"points"`
}

func appendTrajectory(path string, points []bench.CachePoint) error {
	var runs []cacheRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("%s: existing trajectory unreadable: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, cacheRun{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Points:    points,
	})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runExtensions() (string, error) { return bench.Extensions() }
