package main

import "entangle/internal/bench"

func runFig3() (string, error) {
	txt, _, err := bench.Fig3()
	return txt, err
}

func runFig4() (string, error) {
	txt, _, err := bench.Fig4()
	return txt, err
}

func runFig5() (string, error) { return bench.Fig5() }

func runFig6() (string, error) { return bench.Fig6() }

func runBugs() (string, error) {
	txt, _, err := bench.Table3()
	return txt, err
}

func runAblation() (string, error) { return bench.Ablation() }

func runParallel() (string, error) { return bench.Parallel() }

func runChaos() (string, error) { return bench.Chaos() }

func runExtensions() (string, error) { return bench.Extensions() }
