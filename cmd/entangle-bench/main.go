// Command entangle-bench regenerates the paper's evaluation artifacts
// as text reports:
//
//	entangle-bench                 # everything
//	entangle-bench -exp fig3       # one experiment
//	entangle-bench -exp bugs       # Table 3
//
// Experiments: fig3, fig4, fig5, fig6, bugs (Table 3), ablation,
// extensions, parallel, chaos (fault-injection robustness matrix),
// cache (cold vs warm verdict-cache matrix; -json FILE appends the
// run's data points to a BENCH_cache.json-style trajectory).
package main

import (
	"flag"
	"fmt"
	"os"
)

var jsonOut = flag.String("json", "", "append the cache experiment's data points to this JSON trajectory file (e.g. BENCH_cache.json)")

func main() {
	exp := flag.String("exp", "all", "experiment: fig3, fig4, fig5, fig6, bugs, ablation, extensions, parallel, chaos, cache, all")
	flag.Parse()

	steps := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig3", runFig3},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"bugs", runBugs},
		{"ablation", runAblation},
		{"extensions", runExtensions},
		{"parallel", runParallel},
		{"chaos", runChaos},
		{"cache", runCache},
	}
	ran := false
	for _, s := range steps {
		if *exp != "all" && *exp != s.name {
			continue
		}
		ran = true
		txt, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "entangle-bench: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println(txt)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "entangle-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
