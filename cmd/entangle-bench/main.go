// Command entangle-bench regenerates the paper's evaluation artifacts
// as text reports:
//
//	entangle-bench                 # everything
//	entangle-bench -exp fig3       # one experiment
//	entangle-bench -exp bugs       # Table 3
//
// Experiments: fig3, fig4, fig5, fig6, bugs (Table 3), ablation,
// extensions, parallel, chaos (fault-injection robustness matrix),
// cache (cold vs warm verdict-cache matrix; -json FILE appends the
// run's data points to a BENCH_cache.json-style trajectory), saturate
// (cold-check hot-path microbenchmark; -json appends to a
// BENCH_saturate.json-style trajectory, -baseline FILE fails the run
// on a >20% cold-throughput regression vs. that trajectory's last
// recorded run — the CI smoke gate), diff (single-op-edit incremental
// re-verification vs a cold full check; fails unless the diff
// re-checks exactly the edit's downstream cone and replays everything
// else; -json FILE appends to a BENCH_diff.json-style trajectory),
// fleet (sharded verdict fleet: a 3-node simulated cluster must render
// byte-identical reports to a single node, fault-free and under seeded
// chaos with crash/partition/heal, plus a throughput-vs-node-count
// sweep; -json FILE appends to a BENCH_fleet.json-style trajectory),
// fuzz (randomized strategy fuzzer: a seeded campaign of composed
// parallelizations cross-checked against the numeric oracle plus the
// §6.2 bug-class rediscovery sweep; self-gates on soundness and full
// class coverage; -json FILE appends to a BENCH_fuzz.json-style
// trajectory).
//
// -cpuprofile/-memprofile write pprof profiles covering the selected
// experiments (the hot-path tuning loop: `entangle-bench -exp
// saturate -cpuprofile cpu.out`, then `go tool pprof cpu.out`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	jsonOut    = flag.String("json", "", "append the cache/saturate experiment's data points to this JSON trajectory file (e.g. BENCH_cache.json, BENCH_saturate.json)")
	baseline   = flag.String("baseline", "", "saturate: compare against this trajectory's last run and exit non-zero on a cold-throughput regression beyond -tolerance")
	tolerance  = flag.Float64("tolerance", 0.20, "saturate: allowed fractional cold-throughput drop vs. -baseline before failing")
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile covering the selected experiments to this file")
	memprofile = flag.String("memprofile", "", "write a pprof allocation profile taken after the selected experiments to this file")
)

// main defers to run so profile-flushing defers execute before the
// process exits (os.Exit would skip them).
func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "all", "experiment: fig3, fig4, fig5, fig6, bugs, ablation, extensions, parallel, chaos, cache, saturate, diff, fleet, fuzz, all")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "entangle-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "entangle-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "entangle-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "entangle-bench: %v\n", err)
			}
		}()
	}

	steps := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig3", runFig3},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"bugs", runBugs},
		{"ablation", runAblation},
		{"extensions", runExtensions},
		{"parallel", runParallel},
		{"chaos", runChaos},
		{"cache", runCache},
		{"saturate", runSaturate},
		{"diff", runDiff},
		{"fleet", runFleet},
		{"fuzz", runFuzz},
	}
	ran := false
	for _, s := range steps {
		if *exp != "all" && *exp != s.name {
			continue
		}
		ran = true
		txt, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "entangle-bench: %s: %v\n", s.name, err)
			return 1
		}
		fmt.Println(txt)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "entangle-bench: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}
