// Command entangle-fuzz runs the randomized strategy fuzzer: seeded
// campaigns that compose random legal parallelizations of sequential
// models, inject paper-Table-3-style defects with recorded ground
// truth, and cross-check every checker verdict against the numeric
// oracle. Disagreements are shrunk to minimal replayable cases.
//
//	entangle-fuzz                                  # one bounded campaign
//	entangle-fuzz -seed 7 -n 200 -models chain,gpt # directed campaign
//	entangle-fuzz -corpus internal/fuzz/testdata/corpus   # replay first
//	entangle-fuzz -soak 10m -out /tmp/repros       # nightly soak
//
// The process exits non-zero on any unsound case (checker refined,
// numerics disagree), on a corpus replay failure, or on a composition
// error — so the same invocation is the CI gate and the bug hunter.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"entangle/internal/fuzz"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		seed      = flag.Uint64("seed", 1, "master seed for the campaign stream")
		n         = flag.Int("n", 50, "correct compositions per campaign (each also gets one injection per applicable defect class)")
		models    = flag.String("models", "", "comma-separated model families: chain,gpt,seedmoe,regression (empty = all)")
		maxDegree = flag.Int("max-degree", 4, "maximum parallelism degree (power of two, >= 2)")
		workers   = flag.Int("workers", 2, "checker workers per case")
		soak      = flag.Duration("soak", 0, "keep running fresh campaigns until this wall-clock budget is spent (0 = one campaign)")
		corpus    = flag.String("corpus", "", "replay this corpus directory before fuzzing; replay failure fails the run")
		out       = flag.String("out", "", "write shrunk repro cases (new lemma gaps, unsound cases) into this directory")
		verbose   = flag.Bool("v", false, "log every case as it is evaluated")
	)
	flag.Parse()

	families, err := fuzz.ParseFamilies(splitList(*models))
	if err != nil {
		fmt.Fprintf(os.Stderr, "entangle-fuzz: %v\n", err)
		return 2
	}

	// Stage 1: corpus replay — the regression gate. Every committed
	// case must rebuild byte-for-byte and keep (or improve on) its
	// recorded verdict.
	if *corpus != "" {
		cases, err := fuzz.LoadCorpus(*corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "entangle-fuzz: corpus: %v\n", err)
			return 1
		}
		failed := 0
		for _, c := range cases {
			improved, err := fuzz.Replay(c, *workers)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "entangle-fuzz: replay %s: FAIL: %v\n", c.Name, err)
				failed++
			case improved:
				fmt.Printf("replay %-32s ok (improved: recorded %s now passes)\n", c.Name, c.Expect)
			default:
				fmt.Printf("replay %-32s ok (%s)\n", c.Name, c.Expect)
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "entangle-fuzz: %d/%d corpus replays failed\n", failed, len(cases))
			return 1
		}
		fmt.Printf("corpus: %d case(s) replayed\n\n", len(cases))
	}

	// Stage 2: campaigns. A soak budget reruns fresh campaigns with
	// derived seeds until the wall clock is spent.
	deadline := time.Now().Add(*soak)
	round := uint64(0)
	total := &fuzz.Stats{GapKeys: map[string]int{}, ByClass: map[fuzz.DefectClass]*fuzz.ClassStats{}}
	for {
		cfg := fuzz.Config{
			Seed:      *seed + round,
			N:         *n,
			Families:  families,
			MaxDegree: *maxDegree,
			Workers:   *workers,
			Shrink:    true,
		}
		if *verbose {
			cfg.OnCase = func(r *fuzz.Result) {
				d := "correct"
				if r.Case.Defect != nil {
					d = r.Case.Defect.String()
				}
				fmt.Printf("  %-60s %-12s %s\n", r.Case.Plan, d, r.Outcome)
			}
		}
		stats, err := fuzz.Run(cfg)
		merge(total, stats)
		if err != nil {
			report(total)
			fmt.Fprintf(os.Stderr, "entangle-fuzz: %v\n", err)
			return 1
		}
		round++
		if *soak <= 0 || time.Now().After(deadline) {
			break
		}
	}

	report(total)
	if *out != "" && len(total.Repros) > 0 {
		if err := fuzz.SaveCorpus(*out, total.Repros); err != nil {
			fmt.Fprintf(os.Stderr, "entangle-fuzz: saving repros: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %d repro case(s) to %s\n", len(total.Repros), *out)
	}
	if total.Unsound > 0 {
		fmt.Fprintf(os.Stderr, "entangle-fuzz: %d UNSOUND case(s) — checker refined a numerically wrong graph\n", total.Unsound)
		return 1
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func merge(dst, src *fuzz.Stats) {
	if src == nil {
		return
	}
	dst.Cases += src.Cases
	dst.Correct += src.Correct
	dst.Injected += src.Injected
	dst.Agree += src.Agree
	dst.Rediscovered += src.Rediscovered
	dst.LemmaGaps += src.LemmaGaps
	dst.Masked += src.Masked
	dst.Unsound += src.Unsound
	for k, v := range src.GapKeys {
		dst.GapKeys[k] += v
	}
	for cl, cs := range src.ByClass {
		if dst.ByClass[cl] == nil {
			dst.ByClass[cl] = &fuzz.ClassStats{}
		}
		d := dst.ByClass[cl]
		d.Injected += cs.Injected
		d.Rediscovered += cs.Rediscovered
		d.LemmaGap += cs.LemmaGap
		d.Masked += cs.Masked
		d.Unsound += cs.Unsound
	}
	dst.Repros = append(dst.Repros, src.Repros...)
}

func report(s *fuzz.Stats) {
	fmt.Printf("fuzz: %d cases (%d correct, %d injected)\n", s.Cases, s.Correct, s.Injected)
	fmt.Printf("  agree        %6d\n", s.Agree)
	fmt.Printf("  rediscovered %6d\n", s.Rediscovered)
	fmt.Printf("  masked       %6d\n", s.Masked)
	fmt.Printf("  lemma gaps   %6d (%d unique)\n", s.LemmaGaps, s.UniqueGaps())
	fmt.Printf("  unsound      %6d\n", s.Unsound)
	for _, k := range s.SortedGapKeys() {
		fmt.Printf("    gap %-42s ×%d\n", k, s.GapKeys[k])
	}
	for _, cl := range fuzz.Classes {
		c := s.ByClass[cl]
		if c == nil || c.Injected == 0 {
			continue
		}
		fmt.Printf("  class %-20s injected %4d  rediscovered %4d  gap %3d  masked %3d  unsound %3d\n",
			cl, c.Injected, c.Rediscovered, c.LemmaGap, c.Masked, c.Unsound)
	}
}
