// Command entangle-mc is the explicit-state model checker for the
// repo's concurrency core: it exhaustively explores bounded models of
// the wavefront scheduler, the verdict cache's on-disk discipline, the
// daemon's admission/drain gate, and the diff planner's edit space —
// models that drive the shipped state machines and functions
// (core.SchedCore, vcache.Encode/DecodeEntry, server.GateCore,
// core.DiffPlan) — checking every safety invariant plus
// deadlock-freedom at every reachable state.
//
//	entangle-mc                              # every model, ci scope
//	entangle-mc -scope large                 # wider bounds
//	entangle-mc -model wavefront -trace      # one model, full replay on violation
//	entangle-mc -model known-bug -expect-violation
//	entangle-mc -sim -seed 7 -walks 2000     # seeded random-walk mode
//
// A violation prints the failed invariant and the SHORTEST
// counterexample as a numbered action script (with -trace, each step's
// full state rendering). -expect-violation inverts the exit logic for
// the known-bug regression gate: the checker itself is broken if the
// planted bug is NOT found.
//
// Exit status: 0 on success, 1 when a violation is found (or, with
// -expect-violation, when none is), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"entangle/internal/mc"
	"entangle/internal/mc/models"
)

func main() {
	var (
		model     = flag.String("model", "all", "model to check: all, known-bug, or one name")
		scope     = flag.String("scope", "ci", "model scope: ci, small or large")
		trace     = flag.Bool("trace", false, "on violation, replay the full state at every trace step")
		maxStates = flag.Int("max-states", 0, "cap explored states (0 = default; hitting it truncates the search)")
		maxDepth  = flag.Int("max-depth", 0, "cap BFS depth (0 = unbounded)")
		expectBug = flag.Bool("expect-violation", false, "exit 0 iff a violation IS found (known-bug regression gate)")
		sim       = flag.Bool("sim", false, "seeded random-walk simulation instead of exhaustive search")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		walks     = flag.Int("walks", 1000, "simulation walks")
		depth     = flag.Int("depth", 400, "simulation per-walk depth bound")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal("unexpected arguments %v (use -model to pick a model)", flag.Args())
	}

	var ms []mc.Model
	if *model == "all" {
		var err error
		if ms, err = models.ForScope(*scope); err != nil {
			fatal("%v", err)
		}
	} else {
		m, err := models.ByName(*model, *scope)
		if err != nil {
			fatal("%v", err)
		}
		ms = []mc.Model{m}
	}

	violations := 0
	for _, m := range ms {
		var v *mc.Violation
		if *sim {
			res, err := mc.Simulate(m, mc.SimOptions{Seed: *seed, Walks: *walks, MaxDepth: *depth})
			if err != nil {
				fatal("%v", err)
			}
			v = res.Violation
			fmt.Printf("%-22s sim: %d walks, %d steps, %d distinct states, deepest %d, %.0f states/sec — %s\n",
				m.Name(), res.Walks, res.Steps, res.Distinct, res.Deepest, res.StatesPerSec, verdict(v))
		} else {
			res, err := mc.Explore(m, mc.Options{MaxStates: *maxStates, MaxDepth: *maxDepth})
			if err != nil {
				fatal("%v", err)
			}
			v = res.Violation
			note := ""
			if res.Truncated {
				note = " (TRUNCATED: not a proof at this scope)"
			}
			fmt.Printf("%-22s %d states, %d transitions, depth %d, %v — %s%s\n",
				m.Name(), res.States, res.Transitions, res.Depth, res.Duration.Round(res.Duration/100+1), verdict(v), note)
		}
		if v != nil {
			violations++
			fmt.Printf("\n%s: invariant %q violated: %s\n", m.Name(), v.Invariant, v.Detail)
			if *trace {
				fmt.Print(v.Trace.Render())
			} else {
				fmt.Print(actionScript(v.Trace))
			}
			fmt.Println()
		}
	}

	if *expectBug {
		if violations == 0 {
			fmt.Fprintln(os.Stderr, "entangle-mc: expected a violation but every model checked clean — the checker has lost its teeth")
			os.Exit(1)
		}
		fmt.Println("expected violation found: the checker still finds real bugs")
		return
	}
	if violations > 0 {
		os.Exit(1)
	}
}

func verdict(v *mc.Violation) string {
	if v == nil {
		return "OK"
	}
	return "VIOLATION"
}

// actionScript renders just the numbered actions plus the final state
// — the compact default; -trace shows every intermediate state too.
func actionScript(t mc.Trace) string {
	out := ""
	for i, s := range t {
		if i == 0 {
			continue
		}
		out += fmt.Sprintf("%3d. %s\n", i, s.Action)
	}
	if len(t) > 0 {
		out += fmt.Sprintf("  => %s\n", t[len(t)-1].State)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangle-mc: "+format+"\n", args...)
	os.Exit(2)
}
