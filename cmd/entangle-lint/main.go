// Command entangle-lint is the static analyzer for the verifier
// itself: it lints the built-in lemma library, captured computation
// graphs, and the engine's Go source for nondeterminism hazards.
//
//	entangle-lint                         # lint the built-in lemma registry
//	entangle-lint internal/egraph         # + source lint of one package dir
//	entangle-lint model-dist.json         # + graph IR lint of a captured graph
//	entangle-lint -json internal/core g.json
//
// Positional arguments are classified by shape: *.json files get the
// graph IR checks, directories get the Go source checks. The lemma
// registry checks run unless -registry=false. Findings print one per
// line (or as one JSON object with -json).
//
// Exit status: 0 when no error-severity findings, 1 when at least one
// error-severity finding, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"entangle/internal/graph"
	"entangle/internal/lemmas"
	"entangle/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		registry = flag.Bool("registry", true, "lint the built-in lemma registry")
		minSev   = flag.String("severity", "warning", "lowest severity to report: info, warning or error")
	)
	flag.Parse()

	floor, err := parseSeverity(*minSev)
	if err != nil {
		fatal("%v", err)
	}

	var report lint.Report
	if *registry {
		report.Add(lint.Lemmas(lemmas.Default().All())...)
	}
	var srcDirs []string
	for _, arg := range flag.Args() {
		switch {
		case strings.HasSuffix(arg, ".json"):
			g, err := readGraph(arg)
			if err != nil {
				fatal("%s: %v", arg, err)
			}
			for _, d := range lint.Graph(g) {
				d.Subject = arg + ": " + d.Subject
				report.Add(d)
			}
		default:
			info, err := os.Stat(arg)
			if err != nil {
				fatal("%v", err)
			}
			if !info.IsDir() {
				fatal("%s: not a directory or .json graph", arg)
			}
			srcDirs = append(srcDirs, arg)
		}
	}
	if len(srcDirs) > 0 {
		ds, err := lint.Source(srcDirs...)
		if err != nil {
			fatal("%v", err)
		}
		report.Add(ds...)
	}

	filtered := lint.Report{}
	for _, d := range report.Diags {
		if d.Severity >= floor {
			filtered.Add(d)
		}
	}

	if *jsonOut {
		if err := filtered.WriteJSON(os.Stdout); err != nil {
			fatal("%v", err)
		}
	} else if err := filtered.WriteText(os.Stdout); err != nil {
		fatal("%v", err)
	}
	if report.Errors() > 0 {
		os.Exit(1)
	}
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

func parseSeverity(s string) (lint.Severity, error) {
	switch s {
	case "info":
		return lint.SevInfo, nil
	case "warning":
		return lint.SevWarning, nil
	case "error":
		return lint.SevError, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning or error)", s)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entangle-lint: "+format+"\n", args...)
	os.Exit(2)
}
