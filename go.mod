module entangle

go 1.22
